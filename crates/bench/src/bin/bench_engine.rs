//! Engine hot-loop microbenchmark: events/sec and ns/event for the
//! `yoda-netsim` discrete-event core, the quantity every figure binary is
//! ultimately bottlenecked on.
//!
//! Three scenarios isolate the three hot paths:
//!
//! * `pingpong_mesh`  — pure packet dispatch: N nodes bounce pings around
//!   a ring, so every event is a heap pop + address route + node call.
//! * `timer_churn`    — timer arm/cancel/fire: each node keeps a fan of
//!   staggered timers alive, cancelling half of them before they fire.
//! * `trace_ring`     — the ping-pong mesh with tracing enabled, isolating
//!   the per-event trace-record cost (node-name interning).
//! * `full_testbed`   — the paper's testbed end to end (browsers, TCP,
//!   muxes, Yoda instances with a prequal policy, stores, controller):
//!   the realistic event mix, dominated by TCP segment handling rather
//!   than raw dispatch. Runs in the sharded sweep too — per-node RNG
//!   streams make its digest identical at every worker count.
//!
//! The simulation content is fully deterministic (each scenario prints its
//! `event_digest`, which must be identical across hosts and across engine
//! refactors); only the wall-clock measurements vary. Results are written
//! as JSON. With `--update <path>` the file's `"baseline"` block — the
//! measurement recorded before the engine overhaul — is preserved and only
//! `"current"` is replaced, so the repo carries its perf trajectory.
//!
//! A sharded sweep then re-runs `pingpong_mesh` and `timer_churn` through
//! `Engine::run_for_sharded` at 1/2/4/8 workers (override with
//! `--threads N`). Each sharded digest is asserted equal to the
//! single-threaded digest measured in the same process — the bench aborts
//! on any divergence, so the committed `"sharded"` rows are themselves
//! determinism evidence — and in full mode both are additionally pinned
//! to the digests committed in `BENCH_engine.json`. Per-row
//! `events_per_sec_per_worker` is the scaling-efficiency numerator
//! `scripts/check.sh` reports (on a single-core host the sweep still
//! verifies digest identity; the efficiency numbers are only meaningful
//! with real parallelism).
//!
//! ```text
//! bench_engine [--smoke] [--only SCENARIO] [--threads N] [--update BENCH_engine.json]
//! ```
//!
//! `--only` restricts the run to one scenario (exact name) — for
//! profiling a single hot path without the others polluting the samples.

use std::fmt::Write as _;
use std::time::Instant;

use bytes::Bytes;
use yoda_bench::{arg_flag, arg_str, arg_usize};
use yoda_core::instance::YodaConfig;
use yoda_core::testbed::{Testbed, TestbedConfig};
use yoda_http::{BrowserClient, BrowserConfig, OriginServer};
use yoda_l4lb::{rendezvous_pick, Mux};
use yoda_tcp::{Flags, Segment, SeqNum};
use yoda_netsim::{
    Addr, Ctx, Endpoint, Engine, Node, Packet, SimTime, TimerToken, Topology, Zone, PROTO_PING,
};

/// One node of the ping-pong mesh: pings `fanout` successors on start,
/// then replies to every ping forever, keeping a fixed population of
/// packets in flight.
struct Seeder {
    index: u32,
    ring: u32,
    fanout: u32,
}

impl Node for Seeder {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let me = Endpoint::new(mesh_addr(self.index), 0);
        for k in 1..=self.fanout {
            let peer = Endpoint::new(mesh_addr((self.index + k) % self.ring), 0);
            ctx.send(Packet::new(me, peer, PROTO_PING, Bytes::new()));
        }
    }
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let reply = Packet::new(pkt.dst, pkt.src, pkt.protocol, Bytes::new());
        ctx.send(reply);
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: TimerToken) {}
}

/// Timer-churn node: every tick re-arms a fan of staggered timers and
/// cancels half of them before they can fire.
struct Churner {
    period: SimTime,
    fan: u64,
}

impl Node for Churner {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.period, TimerToken::new(0));
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if token.kind != 0 {
            return; // a surviving fan timer: nothing to do
        }
        for i in 0..self.fan {
            let delay = self.period + SimTime::from_micros(17 * i);
            let id = ctx.set_timer(delay, TimerToken::new(1).with_a(i));
            if i % 2 == 0 {
                ctx.cancel_timer(id);
            }
        }
        ctx.set_timer(self.period, TimerToken::new(0));
    }
}

fn mesh_addr(i: u32) -> Addr {
    Addr::new(10, 20, (i / 250) as u8, (i % 250 + 1) as u8)
}

/// Committed full-mode digests (see `BENCH_engine.json`): every run —
/// single-threaded or sharded at any worker count — must land exactly
/// here.
const PINGPONG_DIGEST_FULL: u64 = 0xb9f7_9de3_8943_a8cd;
const CHURN_DIGEST_FULL: u64 = 0x9653_0dd7_2d5c_a05f;
const TESTBED_DIGEST_FULL: u64 = 0x446b_d132_40f8_1607;

struct Measurement {
    name: &'static str,
    /// Worker count for the sharded executor; `0` means the plain
    /// single-threaded `run_for` path.
    threads: usize,
    events: u64,
    elapsed_ns: u128,
    digest: u64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.elapsed_ns as f64 / 1e9)
    }
    fn ns_per_event(&self) -> f64 {
        self.elapsed_ns as f64 / self.events as f64
    }
    /// Scaling-efficiency numerator: throughput normalised by worker
    /// count. Flat across thread counts = perfect scaling.
    fn per_worker(&self) -> f64 {
        self.events_per_sec() / self.threads.max(1) as f64
    }
}

/// Runs `build` + `run_for(duration)` `repeats` times, keeping the fastest
/// wall-clock run. `threads > 0` drives the sharded executor instead. The
/// digest must agree across repeats — a mismatch means the engine is
/// nondeterministic and the numbers are garbage.
fn measure(
    name: &'static str,
    threads: usize,
    repeats: u32,
    duration: SimTime,
    build: impl Fn() -> Engine,
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..repeats {
        let mut eng = build();
        // Setup events (on_start controls and first sends) are untimed.
        eng.run_for(SimTime::from_millis(50));
        let base_events = eng.events_processed();
        let t0 = Instant::now();
        if threads == 0 {
            eng.run_for(duration);
        } else {
            eng.run_for_sharded(duration, threads);
        }
        let elapsed_ns = t0.elapsed().as_nanos().max(1);
        let m = Measurement {
            name,
            threads,
            events: eng.events_processed() - base_events,
            elapsed_ns,
            digest: eng.event_digest(),
        };
        if let Some(prev) = &best {
            assert_eq!(
                prev.digest, m.digest,
                "{name}: digest varies across repeats — engine is nondeterministic"
            );
            assert_eq!(prev.events, m.events, "{name}: event count varies");
        }
        if best.as_ref().is_none_or(|b| m.elapsed_ns < b.elapsed_ns) {
            best = Some(m);
        }
    }
    best.expect("at least one repeat")
}

fn pingpong_mesh(nodes: u32, fanout: u32) -> Engine {
    // No jitter and no loss: the RNG is never consulted, so every event is
    // pure dispatch cost.
    let mut eng = Engine::with_topology(7, Topology::uniform(SimTime::from_millis(1)));
    for i in 0..nodes {
        eng.add_node(
            format!("mesh-{i}"),
            mesh_addr(i),
            Zone::Dc,
            Box::new(Seeder {
                index: i,
                ring: nodes,
                fanout,
            }),
        );
    }
    // Half the mesh also owns a VIP-style alias so the address table sees
    // a realistic multi-address load.
    for i in 0..nodes / 2 {
        let id = eng
            .node_by_addr(mesh_addr(i))
            .expect("mesh node registered");
        eng.add_addr(id, Addr::new(100, 20, (i / 250) as u8, (i % 250 + 1) as u8));
    }
    eng
}

fn timer_churn(nodes: u32, fan: u64) -> Engine {
    let mut eng = Engine::with_topology(7, Topology::uniform(SimTime::from_millis(1)));
    for i in 0..nodes {
        eng.add_node(
            format!("churn-{i}"),
            mesh_addr(i),
            Zone::Dc,
            Box::new(Churner {
                period: SimTime::from_micros(500 + 13 * i as u64),
                fan,
            }),
        );
    }
    eng
}

fn trace_ring(nodes: u32, fanout: u32) -> Engine {
    let mut eng = pingpong_mesh(nodes, fanout);
    eng.enable_trace(1 << 16);
    eng
}

/// The realistic workload: a scaled-down paper testbed with browsers
/// fetching through the full L4/L7 stack and a prequal policy installed
/// at 100 ms (so the probe path is hot too). Returns the bare engine;
/// `measure` drives it directly, single-threaded or sharded.
fn full_testbed() -> Engine {
    let mut tb = Testbed::build(TestbedConfig {
        seed: 0xBEEF,
        num_instances: 3,
        num_spares: 0,
        num_stores: 2,
        num_backends: 8,
        num_muxes: 2,
        num_services: 2,
        pages_per_site: 8,
        ..TestbedConfig::default()
    });
    let vip = tb.vips[0];
    let backends: Vec<String> = tb.service_backends[0]
        .iter()
        .map(|b| b.to_string())
        .collect();
    let rules = format!(
        "name=pq-0 priority=1 match * action=prequal {}",
        backends.join(" ")
    );
    tb.set_policy_at(vip, &rules, SimTime::from_millis(100));
    for service in 0..2 {
        tb.add_browser(
            service,
            BrowserConfig {
                processes: 2,
                ..BrowserConfig::default()
            },
        );
    }
    tb.engine
}

/// One leg of the spliced-vs-tunneled comparison: a fixed testbed
/// workload timed over a steady-state window, with forwarding cost
/// normalised per data packet (request segments + MSS-chunked response
/// segments — the packets that ride the fast path when it is on).
struct SpliceRow {
    name: &'static str,
    elapsed_ns: u128,
    events: u64,
    data_packets: u64,
    spliced: u64,
    completed: u64,
    bytes_served: u64,
    digest: u64,
    p50_ms: f64,
    p99_ms: f64,
    /// Forwarding-tier cost per data packet: raw ns/packet minus the
    /// `forward_direct` calibration baseline (endpoint + dispatch cost
    /// both legs pay identically). Zero for rows it doesn't apply to.
    fwd_overhead_ns: f64,
}

impl SpliceRow {
    fn ns_per_packet(&self) -> f64 {
        self.elapsed_ns as f64 / self.data_packets.max(1) as f64
    }
}

/// Runs the splice-comparison testbed once per repeat (fastest run kept)
/// with the mux fast path on or off — everything else identical, so the
/// ns/packet delta isolates the per-packet cost of the L7 instance hop.
/// HTTP/1.1 inspection is off in both legs: the comparison targets
/// steady-state forwarding, where both splice legs are installable.
fn splice_run(name: &'static str, splice: bool, repeats: u32, duration: SimTime) -> SpliceRow {
    let mut best: Option<SpliceRow> = None;
    for _ in 0..repeats {
        let mut tb = Testbed::build(TestbedConfig {
            seed: 0x51CE,
            num_instances: 1,
            num_spares: 0,
            num_stores: 2,
            num_backends: 4,
            num_muxes: 2,
            num_services: 1,
            pages_per_site: 8,
            yoda: YodaConfig {
                splice,
                http11_inspect: false,
                ..YodaConfig::default()
            },
            ..TestbedConfig::default()
        });
        let browser = tb.add_browser(
            0,
            BrowserConfig {
                processes: 4,
                ..BrowserConfig::default()
            },
        );
        // Warmup: policy install, first handshakes, first splice installs.
        tb.run_for(SimTime::from_millis(500));
        let events0 = tb.engine.events_processed();
        let completed0 = tb
            .engine
            .node_ref::<BrowserClient>(browser)
            .completed;
        let bytes0: u64 = tb
            .backends
            .iter()
            .map(|&b| tb.engine.node_ref::<OriginServer>(b).bytes_served)
            .sum();
        let spliced0: u64 = tb
            .muxes
            .iter()
            .map(|&m| tb.engine.node_ref::<Mux>(m).spliced)
            .sum();
        let t0 = Instant::now();
        tb.run_for(duration);
        let elapsed_ns = t0.elapsed().as_nanos().max(1);
        let completed = tb.engine.node_ref::<BrowserClient>(browser).completed - completed0;
        let bytes_served: u64 = tb
            .backends
            .iter()
            .map(|&b| tb.engine.node_ref::<OriginServer>(b).bytes_served)
            .sum::<u64>()
            - bytes0;
        let spliced: u64 = tb
            .muxes
            .iter()
            .map(|&m| tb.engine.node_ref::<Mux>(m).spliced)
            .sum::<u64>()
            - spliced0;
        let mss = tb.yoda_cfg.mss as u64;
        // Steady-state data packets: one request segment per completed
        // request plus the MSS-chunked response stream. Identical
        // formula in both legs, so the ns/packet ratio is meaningful.
        let data_packets = completed + bytes_served.div_ceil(mss);
        let b = tb.engine.node_mut::<BrowserClient>(browser);
        let p50_ms = b.request_latencies.percentile(50.0).unwrap_or(0.0);
        let p99_ms = b.request_latencies.percentile(99.0).unwrap_or(0.0);
        let m = SpliceRow {
            name,
            elapsed_ns,
            events: tb.engine.events_processed() - events0,
            data_packets,
            spliced,
            completed,
            bytes_served,
            digest: tb.engine.event_digest(),
            p50_ms,
            p99_ms,
            fwd_overhead_ns: 0.0,
        };
        assert!(m.completed > 0, "{name}: no request completed");
        if splice {
            assert!(m.spliced > 0, "{name}: fast path never used");
        } else {
            assert_eq!(m.spliced, 0, "{name}: fast path used with splice off");
        }
        if let Some(prev) = &best {
            assert_eq!(
                prev.digest, m.digest,
                "{name}: digest varies across repeats — engine is nondeterministic"
            );
        }
        if best.as_ref().is_none_or(|b| m.elapsed_ns < b.elapsed_ns) {
            best = Some(m);
        }
    }
    best.expect("at least one repeat")
}

/// Payload size of one pump segment in the forwarding micro-bench.
const PUMP_PAYLOAD: usize = 4096;
/// [`PUMP_PAYLOAD`] in sequence space.
const PUMP_STEP: u32 = PUMP_PAYLOAD as u32;
/// Self-clocked pump segments the backend driver keeps in flight.
const PUMP_WINDOW: usize = 8;
/// The single request that opens the pump flow (must parse and match
/// the installed `match *` rule).
const PUMP_REQUEST: &[u8] = b"GET / HTTP/1.0\r\n\r\n";
/// Fill bytes for the two pump directions — the drivers verify every
/// received segment against these, so the bench itself proves the
/// forwarded payloads are byte-identical in both modes.
const PUMP_S2C_FILL: u8 = 0xB5;
const PUMP_C2S_FILL: u8 = 0xC5;

fn pump_body(fill: u8) -> Bytes {
    Bytes::from(vec![fill; PUMP_PAYLOAD])
}

fn pump_ok(payload: &Bytes, fill: u8) -> bool {
    payload.len() == PUMP_PAYLOAD && payload.iter().all(|&b| b == fill)
}

/// Minimal client endpoint for the forwarding micro-bench: opens one
/// connection through the VIP and then answers every received pump
/// segment with a pump segment of its own. It reaches the muxes the same
/// way the edge router would — ECMP by rendezvous hash — but does no TCP
/// state machinery beyond sequence bookkeeping, so the measured cost is
/// the forwarding tier, not the endpoint.
struct PumpClient {
    me: Endpoint,
    vip: Endpoint,
    /// Backend endpoint for [`PumpMode::Direct`] calibration runs.
    origin: Endpoint,
    direct: bool,
    muxes: Vec<Addr>,
    isn: SeqNum,
    next_seq: SeqNum,
    connected: bool,
    received: u64,
    bad: u64,
}

impl PumpClient {
    fn new(me: Endpoint, vip: Endpoint, origin: Endpoint, muxes: Vec<Addr>, direct: bool) -> Self {
        let isn = SeqNum::new(5_000);
        PumpClient {
            me,
            vip,
            origin,
            direct,
            muxes,
            isn,
            next_seq: isn,
            connected: false,
            received: 0,
            bad: 0,
        }
    }

    fn seg(&self, seq: SeqNum, ack: SeqNum, flags: Flags, payload: Bytes) -> Segment {
        let dst = if self.direct { self.origin } else { self.vip };
        Segment {
            src_port: self.me.port,
            dst_port: dst.port,
            seq,
            ack,
            flags,
            window: 1 << 20,
            payload,
        }
    }

    fn via_mux(&self, seg: Segment) -> Option<Packet> {
        if self.direct {
            // Calibration: straight to the backend, no forwarding tier.
            return Some(seg.into_packet(self.me, self.origin));
        }
        let mux = rendezvous_pick(self.me, self.vip, &self.muxes)?;
        Some(seg.into_packet(self.me, self.vip).encapsulate(self.me.addr, mux))
    }
}

impl Node for PumpClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // First SYN fires after policy installation (t = 1 ms) plus the
        // controller's staggered VIP-map pushes to the muxes; on_timer
        // retransmits until the SYN-ACK lands, like a real client would.
        ctx.set_timer(SimTime::from_millis(50), TimerToken::new(0x50C5));
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let Some(seg) = Segment::from_packet(&pkt) else {
            return;
        };
        if seg.flags.syn && seg.flags.ack {
            if self.connected {
                return;
            }
            self.connected = true;
            // Ride the request on the handshake-completing ACK.
            let req = self.seg(
                self.isn + 1,
                seg.seq + 1,
                Flags::ACK,
                Bytes::from_static(PUMP_REQUEST),
            );
            self.next_seq = self.isn + 1 + PUMP_REQUEST.len() as u32;
            if let Some(out) = self.via_mux(req) {
                ctx.send(out);
            }
            return;
        }
        if seg.payload.is_empty() {
            return;
        }
        self.received += 1;
        if !pump_ok(&seg.payload, PUMP_S2C_FILL) {
            self.bad += 1;
        }
        let data = self.seg(
            self.next_seq,
            seg.seq_end(),
            Flags::ACK,
            pump_body(PUMP_C2S_FILL),
        );
        self.next_seq += PUMP_STEP;
        if let Some(out) = self.via_mux(data) {
            ctx.send(out);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
        if self.connected {
            return;
        }
        let syn = self.seg(self.isn, SeqNum::new(0), Flags::SYN, Bytes::new());
        if let Some(pkt) = self.via_mux(syn) {
            ctx.send(pkt);
        }
        ctx.set_timer(SimTime::from_millis(100), TimerToken::new(0x50C5));
    }
}

/// Minimal origin endpoint for the forwarding micro-bench: completes the
/// backend handshake, then keeps [`PUMP_WINDOW`] self-clocked segments in
/// flight — each received pump segment triggers the next — so the
/// forwarding tier stays saturated for the whole measurement window.
struct PumpBackend {
    me: Endpoint,
    direct: bool,
    muxes: Vec<Addr>,
    isn: SeqNum,
    next_seq: SeqNum,
    pumping: bool,
    received: u64,
    bad: u64,
}

impl PumpBackend {
    fn new(me: Endpoint, muxes: Vec<Addr>, direct: bool) -> Self {
        let isn = SeqNum::new(9_000);
        PumpBackend {
            me,
            direct,
            muxes,
            isn,
            next_seq: isn,
            pumping: false,
            received: 0,
            bad: 0,
        }
    }

    fn reply(&self, to: Endpoint, seq: SeqNum, ack: SeqNum, flags: Flags, payload: Bytes) -> Option<Packet> {
        let seg = Segment {
            src_port: self.me.port,
            dst_port: to.port,
            seq,
            ack,
            flags,
            window: 1 << 20,
            payload,
        };
        if self.direct {
            return Some(seg.into_packet(self.me, to));
        }
        let mux = rendezvous_pick(self.me, to, &self.muxes)?;
        Some(seg.into_packet(self.me, to).encapsulate(self.me.addr, mux))
    }
}

impl Node for PumpBackend {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let vss = pkt.src;
        let Some(seg) = Segment::from_packet(&pkt) else {
            return;
        };
        if seg.flags.syn && !seg.flags.ack {
            self.next_seq = self.isn + 1;
            if let Some(out) = self.reply(vss, self.isn, seg.seq + 1, Flags::SYN_ACK, Bytes::new())
            {
                ctx.send(out);
            }
            return;
        }
        if seg.payload.is_empty() {
            return;
        }
        let burst = if self.pumping {
            self.received += 1;
            if !pump_ok(&seg.payload, PUMP_C2S_FILL) {
                self.bad += 1;
            }
            1 // one in, one out: the pump window stays constant
        } else {
            // The forwarded HTTP request: open the pump.
            self.pumping = true;
            PUMP_WINDOW
        };
        for _ in 0..burst {
            let out = self.reply(
                vss,
                self.next_seq,
                seg.seq_end(),
                Flags::ACK,
                pump_body(PUMP_S2C_FILL),
            );
            self.next_seq += PUMP_STEP;
            if let Some(out) = out {
                ctx.send(out);
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: TimerToken) {}
}

/// Forwarding-tier micro-bench: the real mux/instance/store stack with
/// trivial driver endpoints (above), so host ns/packet measures the
/// forwarding path itself rather than browser and origin bookkeeping.
/// With `splice` off every data packet climbs to the L7 instance and back
/// (mux → instance → mux); with it on, the muxes rewrite in place and
/// forward below the instance. Both drivers verify every received payload
/// byte against the expected fill, so the two legs provably deliver
/// byte-identical streams.
///
/// `direct` runs the same pump straight between the two drivers with no
/// forwarding tier at all — the calibration baseline. Subtracting its
/// ns/packet from the tunneled and spliced rows isolates the forwarding
/// tier's own cost from the flat per-event simulator dispatch both legs
/// pay (endpoint events, payload digesting), which would otherwise drown
/// the comparison.
fn splice_forward_run(
    name: &'static str,
    splice: bool,
    direct: bool,
    repeats: u32,
    duration: SimTime,
) -> SpliceRow {
    let mut best: Option<SpliceRow> = None;
    for _ in 0..repeats {
        let mut tb = Testbed::build(TestbedConfig {
            seed: 0x51CE2,
            num_instances: 1,
            num_spares: 0,
            num_stores: 2,
            num_backends: 1,
            num_muxes: 2,
            num_services: 1,
            pages_per_site: 4,
            yoda: YodaConfig {
                splice,
                http11_inspect: false,
                ..YodaConfig::default()
            },
            ..TestbedConfig::default()
        });
        let vip = tb.vips[0];
        let muxes = tb.mux_addrs.clone();
        let backend_ep = Endpoint::new(Addr::new(10, 1, 0, 99), 80);
        let client_ep = Endpoint::new(Addr::new(172, 16, 9, 9), 42_001);
        tb.set_policy_at(
            vip,
            &format!("name=pump priority=1 match * action=split {backend_ep}=1"),
            SimTime::from_millis(1),
        );
        let backend = tb.engine.add_node(
            "pump-backend",
            backend_ep.addr,
            Zone::Dc,
            Box::new(PumpBackend::new(backend_ep, muxes.clone(), direct)),
        );
        let client = tb.engine.add_node(
            "pump-client",
            client_ep.addr,
            Zone::Dc,
            Box::new(PumpClient::new(client_ep, vip, backend_ep, muxes, direct)),
        );
        // Warmup: handshake, flow storage, splice installation, pump spin-up.
        tb.run_for(SimTime::from_millis(200));
        let events0 = tb.engine.events_processed();
        let recv0 = tb.engine.node_ref::<PumpClient>(client).received
            + tb.engine.node_ref::<PumpBackend>(backend).received;
        let spliced0: u64 = tb
            .muxes
            .iter()
            .map(|&m| tb.engine.node_ref::<Mux>(m).spliced)
            .sum();
        let t0 = Instant::now();
        tb.run_for(duration);
        let elapsed_ns = t0.elapsed().as_nanos().max(1);
        let pc = tb.engine.node_ref::<PumpClient>(client);
        let pb = tb.engine.node_ref::<PumpBackend>(backend);
        let delivered = pc.received + pb.received - recv0;
        assert_eq!(
            pc.bad + pb.bad,
            0,
            "{name}: pump payload corrupted in flight"
        );
        let spliced: u64 = tb
            .muxes
            .iter()
            .map(|&m| tb.engine.node_ref::<Mux>(m).spliced)
            .sum::<u64>()
            - spliced0;
        let m = SpliceRow {
            name,
            elapsed_ns,
            events: tb.engine.events_processed() - events0,
            data_packets: delivered,
            spliced,
            completed: 1,
            bytes_served: delivered * PUMP_PAYLOAD as u64,
            digest: tb.engine.event_digest(),
            p50_ms: 0.0,
            p99_ms: 0.0,
            fwd_overhead_ns: 0.0,
        };
        if delivered == 0 {
            let inst = tb.instances[0];
            let yi = tb
                .engine
                .node_ref::<yoda_core::instance::YodaInstance>(inst);
            eprintln!(
                "DEBUG {name}: client recv={} backend recv={} pumping={} inst flows={} requests={} dropped={} mux fwd={:?}",
                pc.received,
                pb.received,
                pb.pumping,
                yi.live_flows(),
                yi.requests,
                yi.dropped_unknown,
                tb.muxes
                    .iter()
                    .map(|&m| {
                        let mx = tb.engine.node_ref::<Mux>(m);
                        (mx.forwarded, mx.dropped, mx.updates_applied)
                    })
                    .collect::<Vec<_>>(),
            );
        }
        assert!(delivered > 0, "{name}: pump never reached steady state");
        if splice && !direct {
            assert!(m.spliced > 0, "{name}: fast path never used");
        } else {
            assert_eq!(m.spliced, 0, "{name}: fast path used unexpectedly");
        }
        if let Some(prev) = &best {
            assert_eq!(
                prev.digest, m.digest,
                "{name}: digest varies across repeats — engine is nondeterministic"
            );
        }
        if best.as_ref().is_none_or(|b| m.elapsed_ns < b.elapsed_ns) {
            best = Some(m);
        }
    }
    best.expect("at least one repeat")
}

fn json_splice_block(mode: &str, rows: &[SpliceRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "  {{");
    let _ = writeln!(s, "    \"mode\": \"{mode}\",");
    let _ = writeln!(s, "    \"rows\": [");
    for (i, m) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"name\": \"{}\", \"events\": {}, \"data_packets\": {}, \"ns_per_packet\": {:.1}, \"fwd_overhead_ns_per_packet\": {:.1}, \"spliced\": {}, \"completed\": {}, \"bytes_served\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"digest\": \"{:#018x}\"}}{comma}",
            m.name,
            m.events,
            m.data_packets,
            m.ns_per_packet(),
            m.fwd_overhead_ns,
            m.spliced,
            m.completed,
            m.bytes_served,
            m.p50_ms,
            m.p99_ms,
            m.digest,
        );
    }
    let _ = writeln!(s, "    ]");
    let _ = write!(s, "  }}");
    s
}

fn json_block(mode: &str, results: &[Measurement]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "  {{");
    let _ = writeln!(s, "    \"mode\": \"{mode}\",");
    let _ = writeln!(s, "    \"scenarios\": [");
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"name\": \"{}\", \"events\": {}, \"events_per_sec\": {:.0}, \"ns_per_event\": {:.1}, \"digest\": \"{:#018x}\"}}{comma}",
            m.name,
            m.events,
            m.events_per_sec(),
            m.ns_per_event(),
            m.digest,
        );
    }
    let _ = writeln!(s, "    ]");
    let _ = write!(s, "  }}");
    s
}

/// Renders the sharded sweep: one row per (scenario, worker count), with
/// the per-worker throughput `scripts/check.sh` turns into a scaling-
/// efficiency report.
fn json_sharded_block(mode: &str, rows: &[Measurement]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "  {{");
    let _ = writeln!(s, "    \"mode\": \"{mode}\",");
    let _ = writeln!(s, "    \"rows\": [");
    for (i, m) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"name\": \"{}\", \"threads\": {}, \"events\": {}, \"events_per_sec\": {:.0}, \"events_per_sec_per_worker\": {:.0}, \"digest\": \"{:#018x}\"}}{comma}",
            m.name,
            m.threads,
            m.events,
            m.events_per_sec(),
            m.per_worker(),
            m.digest,
        );
    }
    let _ = writeln!(s, "    ]");
    let _ = write!(s, "  }}");
    s
}

/// Extracts the `"baseline": { ... }` block (balanced braces) from a
/// previously written report, so re-running the bench preserves the
/// pre-overhaul measurement forever.
fn extract_baseline(text: &str) -> Option<String> {
    let start = text.find("\"baseline\":")? + "\"baseline\":".len();
    let rest = &text[start..];
    let open = rest.find('{')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[open..open + i + 1].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn main() {
    let smoke = arg_flag("smoke");
    let (repeats, secs) = if smoke { (1, 1) } else { (3, 4) };
    let duration = SimTime::from_secs(secs);

    let only = arg_str("only");
    let wanted = |name: &str| only.as_deref().is_none_or(|o| o == name);
    let mut results = Vec::new();
    if wanted("pingpong_mesh") {
        results.push(measure("pingpong_mesh", 0, repeats, duration, || {
            pingpong_mesh(512, 4)
        }));
    }
    if wanted("timer_churn") {
        results.push(measure("timer_churn", 0, repeats, duration, || {
            timer_churn(64, 16)
        }));
    }
    if wanted("trace_ring") {
        results.push(measure("trace_ring", 0, repeats, duration, || {
            trace_ring(512, 4)
        }));
    }
    if wanted("full_testbed") {
        results.push(measure("full_testbed", 0, repeats, duration, full_testbed));
    }

    // Spliced-vs-tunneled forwarding comparison. Deliberately outside the
    // sharded sweep (its digests are its own, not the committed testbed
    // baselines) — the spliced-testbed shard-equivalence proof lives in
    // tests/shard_determinism.rs instead.
    let mut splice_rows = Vec::new();
    if wanted("splice") {
        // Forwarding-tier micro-bench: the headline ns/packet comparison.
        // `forward_direct` calibrates out the endpoint + simulator-dispatch
        // cost both legs pay identically; the committed win is the ratio of
        // forwarding-tier overheads above that common baseline.
        splice_rows.push(splice_forward_run("forward_direct", false, true, repeats, duration));
        splice_rows.push(splice_forward_run("forward_tunneled", false, false, repeats, duration));
        splice_rows.push(splice_forward_run("forward_spliced", true, false, repeats, duration));
        let base = splice_rows[0].ns_per_packet();
        splice_rows[1].fwd_overhead_ns = (splice_rows[1].ns_per_packet() - base).max(0.0);
        splice_rows[2].fwd_overhead_ns = (splice_rows[2].ns_per_packet() - base).max(0.0);
        let ratio = splice_rows[1].fwd_overhead_ns / splice_rows[2].fwd_overhead_ns.max(1e-9);
        // Full-workload testbed: request latency and workload-level byte
        // identity (identical bytes_served/completed across the legs).
        splice_rows.push(splice_run("testbed_tunneled", false, repeats, duration));
        splice_rows.push(splice_run("testbed_spliced", true, repeats, duration));
        assert_eq!(
            splice_rows[3].bytes_served, splice_rows[4].bytes_served,
            "spliced testbed must serve byte-identical responses"
        );
        assert_eq!(
            splice_rows[3].completed, splice_rows[4].completed,
            "spliced testbed must complete the same requests"
        );
        for m in &splice_rows {
            eprintln!(
                "{:17} {:>10} pkts    {:>12.1} ns/packet  fwd {:>9.1} ns  p50 {:>7.2} ms  p99 {:>7.2} ms  digest {:#018x}",
                m.name,
                m.data_packets,
                m.ns_per_packet(),
                m.fwd_overhead_ns,
                m.p50_ms,
                m.p99_ms,
                m.digest,
            );
        }
        eprintln!(
            "{:17} {ratio:.2}x forwarding-tier ns/packet win (spliced vs tunneled)",
            "splice"
        );
        if !smoke {
            assert!(
                ratio >= 2.0,
                "spliced forwarding must be >=2x cheaper per packet than tunneled \
                 (got {ratio:.2}x)"
            );
        }
    }

    for m in &results {
        eprintln!(
            "{:16} {:>10} events  {:>12.0} events/s  {:>8.1} ns/event  digest {:#018x}",
            m.name,
            m.events,
            m.events_per_sec(),
            m.ns_per_event(),
            m.digest,
        );
    }

    // Sharded sweep: same workloads through the multi-core executor, one
    // row per worker count, digest-checked against the single-threaded
    // run above.
    let sweep: Vec<usize> = match arg_usize("threads", 0) {
        0 => vec![1, 2, 4, 8],
        n => vec![n],
    };
    let st_digest = |name: &str| results.iter().find(|m| m.name == name).map(|m| m.digest);
    let mut sharded = Vec::new();
    for &threads in &sweep {
        if wanted("pingpong_mesh") {
            sharded.push(measure("pingpong_mesh", threads, repeats, duration, || {
                pingpong_mesh(512, 4)
            }));
        }
        if wanted("timer_churn") {
            sharded.push(measure("timer_churn", threads, repeats, duration, || {
                timer_churn(64, 16)
            }));
        }
        if wanted("full_testbed") {
            sharded.push(measure("full_testbed", threads, repeats, duration, full_testbed));
        }
    }
    for m in &sharded {
        if let Some(expect) = st_digest(m.name) {
            assert_eq!(
                m.digest, expect,
                "{} at {} workers diverged from the single-threaded digest",
                m.name, m.threads
            );
        }
        if !smoke {
            let committed = match m.name {
                "pingpong_mesh" => PINGPONG_DIGEST_FULL,
                "timer_churn" => CHURN_DIGEST_FULL,
                _ => TESTBED_DIGEST_FULL,
            };
            assert_eq!(
                m.digest, committed,
                "{} at {} workers diverged from the committed baseline digest",
                m.name, m.threads
            );
        }
        eprintln!(
            "{:16} x{:<2} {:>10} events  {:>12.0} events/s  {:>12.0} ev/s/worker  digest {:#018x}",
            m.name,
            m.threads,
            m.events,
            m.events_per_sec(),
            m.per_worker(),
            m.digest,
        );
    }

    let mode = if smoke { "smoke" } else { "full" };
    let current = json_block(mode, &results);
    let sharded_block = json_sharded_block(mode, &sharded);
    let splice_block = json_splice_block(mode, &splice_rows);
    let baseline = arg_str("update")
        .and_then(|path| std::fs::read_to_string(path).ok())
        .and_then(|text| extract_baseline(&text))
        .unwrap_or_else(|| current.clone());

    let report = format!(
        "{{\n  \"bench\": \"bench_engine\",\n  \"schema\": 4,\n  \"baseline\":\n{baseline},\n  \"current\":\n{current},\n  \"sharded\":\n{sharded_block},\n  \"splice\":\n{splice_block}\n}}\n"
    );
    match arg_str("update") {
        Some(path) => {
            std::fs::write(&path, &report).expect("write bench report");
            eprintln!("wrote {path}");
        }
        None => print!("{report}"),
    }
}
