//! Engine hot-loop microbenchmark: events/sec and ns/event for the
//! `yoda-netsim` discrete-event core, the quantity every figure binary is
//! ultimately bottlenecked on.
//!
//! Three scenarios isolate the three hot paths:
//!
//! * `pingpong_mesh`  — pure packet dispatch: N nodes bounce pings around
//!   a ring, so every event is a heap pop + address route + node call.
//! * `timer_churn`    — timer arm/cancel/fire: each node keeps a fan of
//!   staggered timers alive, cancelling half of them before they fire.
//! * `trace_ring`     — the ping-pong mesh with tracing enabled, isolating
//!   the per-event trace-record cost (node-name interning).
//!
//! The simulation content is fully deterministic (each scenario prints its
//! `event_digest`, which must be identical across hosts and across engine
//! refactors); only the wall-clock measurements vary. Results are written
//! as JSON. With `--update <path>` the file's `"baseline"` block — the
//! measurement recorded before the engine overhaul — is preserved and only
//! `"current"` is replaced, so the repo carries its perf trajectory.
//!
//! ```text
//! bench_engine [--smoke] [--only SCENARIO] [--update BENCH_engine.json]
//! ```
//!
//! `--only` restricts the run to one scenario (exact name) — for
//! profiling a single hot path without the others polluting the samples.

use std::fmt::Write as _;
use std::time::Instant;

use bytes::Bytes;
use yoda_bench::{arg_flag, arg_str};
use yoda_netsim::{
    Addr, Ctx, Endpoint, Engine, Node, Packet, SimTime, TimerToken, Topology, Zone, PROTO_PING,
};

/// One node of the ping-pong mesh: pings `fanout` successors on start,
/// then replies to every ping forever, keeping a fixed population of
/// packets in flight.
struct Seeder {
    index: u32,
    ring: u32,
    fanout: u32,
}

impl Node for Seeder {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let me = Endpoint::new(mesh_addr(self.index), 0);
        for k in 1..=self.fanout {
            let peer = Endpoint::new(mesh_addr((self.index + k) % self.ring), 0);
            ctx.send(Packet::new(me, peer, PROTO_PING, Bytes::new()));
        }
    }
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let reply = Packet::new(pkt.dst, pkt.src, pkt.protocol, Bytes::new());
        ctx.send(reply);
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: TimerToken) {}
}

/// Timer-churn node: every tick re-arms a fan of staggered timers and
/// cancels half of them before they can fire.
struct Churner {
    period: SimTime,
    fan: u64,
}

impl Node for Churner {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.period, TimerToken::new(0));
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if token.kind != 0 {
            return; // a surviving fan timer: nothing to do
        }
        for i in 0..self.fan {
            let delay = self.period + SimTime::from_micros(17 * i);
            let id = ctx.set_timer(delay, TimerToken::new(1).with_a(i));
            if i % 2 == 0 {
                ctx.cancel_timer(id);
            }
        }
        ctx.set_timer(self.period, TimerToken::new(0));
    }
}

fn mesh_addr(i: u32) -> Addr {
    Addr::new(10, 20, (i / 250) as u8, (i % 250 + 1) as u8)
}

struct Measurement {
    name: &'static str,
    events: u64,
    elapsed_ns: u128,
    digest: u64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.elapsed_ns as f64 / 1e9)
    }
    fn ns_per_event(&self) -> f64 {
        self.elapsed_ns as f64 / self.events as f64
    }
}

/// Runs `build` + `run_for(duration)` `repeats` times, keeping the fastest
/// wall-clock run. The digest must agree across repeats — a mismatch means
/// the engine is nondeterministic and the numbers are garbage.
fn measure(
    name: &'static str,
    repeats: u32,
    duration: SimTime,
    build: impl Fn() -> Engine,
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..repeats {
        let mut eng = build();
        // Setup events (on_start controls and first sends) are untimed.
        eng.run_for(SimTime::from_millis(50));
        let base_events = eng.events_processed();
        let t0 = Instant::now();
        eng.run_for(duration);
        let elapsed_ns = t0.elapsed().as_nanos().max(1);
        let m = Measurement {
            name,
            events: eng.events_processed() - base_events,
            elapsed_ns,
            digest: eng.event_digest(),
        };
        if let Some(prev) = &best {
            assert_eq!(
                prev.digest, m.digest,
                "{name}: digest varies across repeats — engine is nondeterministic"
            );
            assert_eq!(prev.events, m.events, "{name}: event count varies");
        }
        if best.as_ref().is_none_or(|b| m.elapsed_ns < b.elapsed_ns) {
            best = Some(m);
        }
    }
    best.expect("at least one repeat")
}

fn pingpong_mesh(nodes: u32, fanout: u32) -> Engine {
    // No jitter and no loss: the RNG is never consulted, so every event is
    // pure dispatch cost.
    let mut eng = Engine::with_topology(7, Topology::uniform(SimTime::from_millis(1)));
    for i in 0..nodes {
        eng.add_node(
            format!("mesh-{i}"),
            mesh_addr(i),
            Zone::Dc,
            Box::new(Seeder {
                index: i,
                ring: nodes,
                fanout,
            }),
        );
    }
    // Half the mesh also owns a VIP-style alias so the address table sees
    // a realistic multi-address load.
    for i in 0..nodes / 2 {
        let id = eng
            .node_by_addr(mesh_addr(i))
            .expect("mesh node registered");
        eng.add_addr(id, Addr::new(100, 20, (i / 250) as u8, (i % 250 + 1) as u8));
    }
    eng
}

fn timer_churn(nodes: u32, fan: u64) -> Engine {
    let mut eng = Engine::with_topology(7, Topology::uniform(SimTime::from_millis(1)));
    for i in 0..nodes {
        eng.add_node(
            format!("churn-{i}"),
            mesh_addr(i),
            Zone::Dc,
            Box::new(Churner {
                period: SimTime::from_micros(500 + 13 * i as u64),
                fan,
            }),
        );
    }
    eng
}

fn trace_ring(nodes: u32, fanout: u32) -> Engine {
    let mut eng = pingpong_mesh(nodes, fanout);
    eng.enable_trace(1 << 16);
    eng
}

fn json_block(mode: &str, results: &[Measurement]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "  {{");
    let _ = writeln!(s, "    \"mode\": \"{mode}\",");
    let _ = writeln!(s, "    \"scenarios\": [");
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"name\": \"{}\", \"events\": {}, \"events_per_sec\": {:.0}, \"ns_per_event\": {:.1}, \"digest\": \"{:#018x}\"}}{comma}",
            m.name,
            m.events,
            m.events_per_sec(),
            m.ns_per_event(),
            m.digest,
        );
    }
    let _ = writeln!(s, "    ]");
    let _ = write!(s, "  }}");
    s
}

/// Extracts the `"baseline": { ... }` block (balanced braces) from a
/// previously written report, so re-running the bench preserves the
/// pre-overhaul measurement forever.
fn extract_baseline(text: &str) -> Option<String> {
    let start = text.find("\"baseline\":")? + "\"baseline\":".len();
    let rest = &text[start..];
    let open = rest.find('{')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[open..open + i + 1].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn main() {
    let smoke = arg_flag("smoke");
    let (repeats, secs) = if smoke { (1, 1) } else { (3, 4) };
    let duration = SimTime::from_secs(secs);

    let only = arg_str("only");
    let wanted = |name: &str| only.as_deref().is_none_or(|o| o == name);
    let mut results = Vec::new();
    if wanted("pingpong_mesh") {
        results.push(measure("pingpong_mesh", repeats, duration, || {
            pingpong_mesh(512, 4)
        }));
    }
    if wanted("timer_churn") {
        results.push(measure("timer_churn", repeats, duration, || {
            timer_churn(64, 16)
        }));
    }
    if wanted("trace_ring") {
        results.push(measure("trace_ring", repeats, duration, || {
            trace_ring(512, 4)
        }));
    }

    for m in &results {
        eprintln!(
            "{:16} {:>10} events  {:>12.0} events/s  {:>8.1} ns/event  digest {:#018x}",
            m.name,
            m.events,
            m.events_per_sec(),
            m.ns_per_event(),
            m.digest,
        );
    }

    let mode = if smoke { "smoke" } else { "full" };
    let current = json_block(mode, &results);
    let baseline = arg_str("update")
        .and_then(|path| std::fs::read_to_string(path).ok())
        .and_then(|text| extract_baseline(&text))
        .unwrap_or_else(|| current.clone());

    let report = format!(
        "{{\n  \"bench\": \"bench_engine\",\n  \"schema\": 1,\n  \"baseline\":\n{baseline},\n  \"current\":\n{current}\n}}\n"
    );
    match arg_str("update") {
        Some(path) => {
            std::fs::write(&path, &report).expect("write bench report");
            eprintln!("wrote {path}");
        }
        None => print!("{report}"),
    }
}
