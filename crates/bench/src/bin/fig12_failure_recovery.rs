//! Figure 12: failure recovery — the paper's headline experiment.
//!
//! 10 LB instances; 2 fail simultaneously mid-run. Browsers (20 fetch
//! processes each, 30 s HTTP timeout) keep fetching pages throughout.
//!
//! Paper findings:
//! * HAProxy-noretry **breaks 24% of flows** (they hang to the HTTP
//!   timeout and are abandoned),
//! * HAProxy-retry completes everything but with +30 s latency on the
//!   affected flows,
//! * Yoda-noretry breaks **nothing**: affected flows finish 0.6–3 s late
//!   (the 600 ms detection + mux re-steer + TCPStore recovery),
//! * Yoda-retry is never exercised ("there was never any retry made").
//!
//! `--timeline` also prints the Figure 12(b) packet trace at the backend:
//! drop at failure, server retransmit at +300 ms (still to the dead
//! instance), retransmit at +600 ms reaching a live instance, recovery.

use yoda_bench::report::{f2, pct, print_header, print_kv, Table};
use yoda_bench::{arg_flag, arg_usize, run_failover, FailoverSetup, LbKind};
use yoda_netsim::SimTime;

fn main() {
    print_header(
        "Figure 12",
        "End-to-end request latency under 2/10 LB instance failures",
    );
    let browsers = arg_usize("browsers", 4);
    let processes = arg_usize("processes", 20);
    let pages = arg_usize("pages", 3) as u64;
    // Long transfers (the largest ~442 KB object), failed mid-flight:
    // this reproduces the paper's "breaking a single established
    // connection" condition, under which 2/10 dead instances strand
    // ≈20-24% of the in-flight flows.
    let base = FailoverSetup {
        num_instances: 10,
        fail: vec![0, 1],
        fail_at: SimTime::from_millis(3500),
        browsers,
        processes,
        use_largest_object: true,
        max_pages: Some(pages),
        http_timeout: SimTime::from_secs(30),
        duration: SimTime::from_secs(150),
        ..FailoverSetup::default()
    };

    let runs = [
        ("Yoda-noretry", LbKind::Yoda, 0u32),
        ("Yoda-retry", LbKind::Yoda, 1),
        ("HAProxy-noretry", LbKind::Proxy, 0),
        ("HAProxy-retry", LbKind::Proxy, 1),
    ];
    let mut table = Table::new(&[
        "scenario",
        "requests",
        "broken",
        "timeouts",
        "p50 (ms)",
        "p99 (ms)",
        "max (ms)",
        "recovered",
    ]);
    let mut cdf_sets = Vec::new();
    for (name, lb, retries) in runs {
        let mut out = run_failover(&FailoverSetup {
            lb,
            retries,
            timeline: arg_flag("timeline") && lb == LbKind::Yoda && retries == 0,
            ..base.clone()
        });
        table.row(&[
            name.to_string(),
            (out.completed + out.broken).to_string(),
            pct(out.broken_fraction()),
            out.timeouts.to_string(),
            f2(out.latencies.median().unwrap_or(0.0)),
            f2(out.latencies.percentile(99.0).unwrap_or(0.0)),
            f2(out.latencies.max().unwrap_or(0.0)),
            out.recoveries.to_string(),
        ]);
        cdf_sets.push((name, out));
    }
    table.print();
    print_kv(
        "paper",
        "HAProxy-noretry broke 24% of flows; HAProxy-retry +30 s; Yoda +0.6-3 s, 0 broken",
    );

    // TCPStore health as the surviving instances saw it: recovery reads
    // land here, so a browning replica would show up as hedges/timeouts.
    println!();
    println!("TCPStore per-replica client stats (Yoda-noretry):");
    let (_, yoda) = &cdf_sets[0];
    yoda.store_stats.table().print();
    print_kv(
        "store ops: timeouts/hedges/retries/quarantines",
        format!(
            "{} / {} / {} / {}",
            yoda.store_stats.timeouts,
            yoda.store_stats.hedges,
            yoda.store_stats.retries,
            yoda.store_stats.quarantines
        ),
    );

    println!();
    println!("(a) request-latency CDF points (fraction of requests <= x ms):");
    let mut cdf_table = Table::new(&["x (ms)", "Yoda-noretry", "HAProxy-noretry", "HAProxy-retry"]);
    for x in [300.0, 600.0, 1_000.0, 2_000.0, 3_000.0, 5_000.0, 29_999.0, 31_000.0, 35_000.0] {
        let mut f = |name: &str| -> String {
            let (_, out) = cdf_sets
                .iter_mut()
                .find(|(n, _)| *n == name)
                .expect("scenario exists");
            pct(out.latencies.cdf_at(x))
        };
        cdf_table.row(&[
            format!("{x:.0}"),
            f("Yoda-noretry"),
            f("HAProxy-noretry"),
            f("HAProxy-retry"),
        ]);
    }
    cdf_table.print();

    if arg_flag("timeline") {
        println!();
        println!("(b) packet timeline at the backend around the failure (Yoda-noretry):");
        let (_, yoda) = &cdf_sets[0];
        for line in yoda.timeline.iter().take(60) {
            println!("    {line}");
        }
    }
}
