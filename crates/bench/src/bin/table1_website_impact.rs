//! Table 1: impact of a proxy failure on different websites.
//!
//! The paper emulates a proxy failure that breaks one established
//! connection against 10 popular websites: page-oriented sites (nytimes,
//! reddit, stanford) see the **page time out** (Firefox's 5-minute HTTP
//! timeout), and streaming/session sites (vimeo, soundcloud, an email
//! service) see the **session reset**.
//!
//! This binary reproduces the emulation with two browser profiles over
//! the same failure injection — a page profile (long HTTP timeout, no
//! retry) and a streaming profile (stall detector on a long transfer) —
//! and runs each against the HAProxy-style baseline and against Yoda.

use yoda_bench::report::{print_header, print_kv, Table};
use yoda_bench::{run_failover, FailoverSetup, LbKind};
use yoda_netsim::SimTime;

struct SiteProfile {
    name: &'static str,
    streaming: bool,
}

const SITES: &[SiteProfile] = &[
    SiteProfile { name: "nytimes", streaming: false },
    SiteProfile { name: "reddit", streaming: false },
    SiteProfile { name: "stanford", streaming: false },
    SiteProfile { name: "vimeo", streaming: true },
    SiteProfile { name: "soundcloud", streaming: true },
    SiteProfile { name: "email service", streaming: true },
];

fn impact(lb: LbKind, streaming: bool, seed: u64) -> String {
    let setup = FailoverSetup {
        seed,
        lb,
        num_instances: 4,
        fail: vec![0, 1, 2, 3],  // break every in-flight connection
        fail_at: SimTime::from_millis(2500),
        browsers: 1,
        processes: 8,
        retries: 0,
        // Firefox's 5-minute HTTP timeout; streaming profiles detect the
        // failure earlier via the 10 s stall detector.
        http_timeout: SimTime::from_secs(300),
        stall_timeout: streaming.then(|| SimTime::from_secs(10)),
        use_largest_object: true,
        max_pages: Some(1),
        warmup: SimTime::from_secs(1),
        duration: SimTime::from_secs(400),
        timeline: false,
        fixed_object: None,
    };
    // For Yoda nothing fails permanently if at least one instance lives;
    // here we only fail instances for the proxy runs (the paper breaks
    // "a single established connection" of the proxy). For Yoda, fail
    // half the instances instead — the worst realistic case.
    let setup = match lb {
        LbKind::Proxy => setup,
        LbKind::Yoda => FailoverSetup {
            fail: vec![0, 1],
            ..setup
        },
    };
    let out = run_failover(&setup);
    if out.session_resets > 0 {
        format!("session reset ({}x)", out.session_resets)
    } else if out.timeouts > 0 {
        format!("page timed-out ({}x)", out.timeouts)
    } else if out.broken > 0 {
        "broken".to_string()
    } else {
        "no impact".to_string()
    }
}

fn main() {
    print_header(
        "Table 1",
        "Impact of LB instance failure on emulated website profiles",
    );
    let mut table = Table::new(&["website", "profile", "HAProxy impact", "Yoda impact"]);
    for (i, site) in SITES.iter().enumerate() {
        let proxy = impact(LbKind::Proxy, site.streaming, 100 + i as u64);
        let yoda = impact(LbKind::Yoda, site.streaming, 100 + i as u64);
        table.row(&[
            site.name.to_string(),
            if site.streaming { "streaming session" } else { "page load" }.to_string(),
            proxy,
            yoda,
        ]);
    }
    table.print();
    print_kv(
        "paper",
        "proxy failure: pages time out (5-min browser timeout) or sessions reset; Yoda: none",
    );
}
