//! Figure 13: Yoda scalability — elastic instance addition under load.
//!
//! Paper: 6 instances at 5K req/s each (≈40% CPU); at t=10 s the offered
//! load doubles to 10K req/s per instance (≈80% CPU); the controller adds
//! 3 instances, dropping per-instance load to ≈6.7K req/s and CPU to
//! ≈60%. "Importantly, all client flows were maintained throughout the
//! experiment", and latency shows no spike because queues only build once
//! CPU saturates.
//!
//! The default run is scaled to 1/5 of the paper's rates (same CPU
//! fractions — the instance capacity constant is scaled identically) so
//! it completes in seconds; pass `--scale 1` for full scale.

use yoda_bench::report::{f1, print_header, print_kv, Table};
use yoda_bench::{arg_f64, TimeSeries};
use yoda_core::controller::{AutoscaleConfig, ControllerConfig};
use yoda_core::testbed::{Testbed, TestbedConfig};
use yoda_core::{YodaConfig, YodaInstance};
use yoda_http::{RateClient as HttpRateClient, RateClientConfig};
use yoda_netsim::SimTime;

fn main() {
    print_header("Figure 13", "Scalability: autoscaler adds instances under load");
    let scale = arg_f64("scale", 0.1);
    let base_rate = 5_000.0 * scale; // per-instance offered load, phase 1
    let cpu_scale = 1.0 / scale;
    print_kv("scale factor", scale);

    let yoda = YodaConfig {
        // Per-request CPU scaled so the same *fraction* of capacity is
        // used at the scaled rates.
        per_pkt_cpu: SimTime::from_micros((16.0 * cpu_scale) as u64),
        per_conn_cpu: SimTime::from_micros((300.0 * cpu_scale) as u64),
        ..YodaConfig::default()
    };
    let mut tb = Testbed::build(TestbedConfig {
        seed: 13,
        num_instances: 6,
        num_spares: 4,
        num_services: 1,
        num_backends: 12,
        yoda,
        controller: ControllerConfig {
            autoscale: Some(AutoscaleConfig {
                high_cpu: 0.70,
                target_cpu: 0.55,
            }),
            ..ControllerConfig::default()
        },
        ..TestbedConfig::default()
    });
    // ~10 KB objects, as in the paper's Apache-bench runs (and matching
    // the per-request CPU calibration of ~20 packets/request).
    let obj = tb
        .catalog
        .site(0)
        .objects
        .iter()
        .min_by_key(|o| (o.size as i64 - 10 * 1024).abs())
        .map(|o| o.path.clone())
        .expect("objects");

    // Warm up control plane, then phase 1 load from t=1 s, phase 2
    // (doubled) from t=11 s.
    let n_inst = 6.0;
    let clients = 6;
    for phase in 0..2 {
        for c in 0..clients {
            let rate = base_rate * n_inst / clients as f64;
            let start_at = SimTime::from_secs(1 + phase * 10);
            let duration = if phase == 0 {
                SimTime::from_secs(30)
            } else {
                SimTime::from_secs(20)
            };
            let cfgc = RateClientConfig {
                rate_per_sec: rate,
                object_path: Some(obj.clone()),
                duration: Some(duration),
                ..RateClientConfig::default()
            };
            // Phase-2 clients are added later via scheduling: build now,
            // attach at start time.
            if phase == 0 {
                tb.add_rate_client(0, cfgc);
            } else {
                let catalog = tb.catalog.clone();
                let vip = tb.vips[0];
                let addr = yoda_netsim::Addr::new(172, 16, 2, (c + 1) as u8);
                let node = HttpRateClient::new(
                    RateClientConfig {
                        target: vip,
                        host: "service0.test".into(),
                        ..cfgc
                    },
                    addr,
                    catalog,
                );
                tb.engine.schedule(start_at, move |eng| {
                    eng.add_node(
                        format!("rate2-{addr}"),
                        addr,
                        yoda_netsim::Zone::External,
                        Box::new(node),
                    );
                });
            }
        }
    }

    // Sample mean CPU + live instance count every second.
    let series = TimeSeries::new();
    let instances: Vec<_> = tb.instances.clone();
    let spares: Vec<_> = tb.spares.clone();
    series.install(
        &mut tb.engine,
        SimTime::from_secs(1),
        SimTime::from_secs(1),
        SimTime::from_secs(30),
        move |eng| {
            let now = eng.now();
            let mut cpu = Vec::new();
            for &i in instances.iter().chain(spares.iter()) {
                let inst = eng.node_ref::<YodaInstance>(i);
                let u = inst.cpu_utilization(now);
                if inst.requests > 0 || u > 0.001 {
                    cpu.push(u);
                }
            }
            let serving = cpu.len() as f64;
            let mean = if cpu.is_empty() {
                0.0
            } else {
                cpu.iter().sum::<f64>() / serving
            };
            // No window reset here: the controller's stats poll owns the
            // measurement windows; this sampler only observes.
            vec![mean, serving.max(6.0)]
        },
    );
    tb.engine.run_for(SimTime::from_secs(32));

    let mut t = Table::new(&["t (s)", "mean CPU", "serving instances"]);
    for (time, vals) in series.rows() {
        t.row(&[
            format!("{:.0}", time.as_secs_f64()),
            format!("{:.0}%", vals[0] * 100.0),
            f1(vals[1]),
        ]);
    }
    t.print();

    // Flow integrity: no client saw a timeout or reset.
    let mut timeouts = 0;
    let mut resets = 0;
    let mut completed = 0;
    let mut issued = 0;
    let client_ids = tb_client_ids(&tb);
    for id in client_ids {
        let c = tb.engine.node_ref::<HttpRateClient>(id);
        timeouts += c.timeouts;
        resets += c.resets;
        completed += c.completed;
        issued += c.issued;
    }
    print_kv("requests issued / completed", format!("{issued} / {completed}"));
    print_kv("requests timed out", timeouts);
    print_kv("requests reset", resets);
    print_kv(
        "paper",
        "CPU 40% -> 80% after load doubles; +3 instances -> ~60%; all flows maintained",
    );
}

/// Client nodes attached via `add_rate_client` occupy the trailing node
/// ids; rather than track them we scan for RateClient nodes by probing
/// known addresses.
fn tb_client_ids(tb: &Testbed) -> Vec<yoda_netsim::NodeId> {
    let mut ids = Vec::new();
    // Phase-1 clients: 172.16.1.x, phase-2: 172.16.2.x.
    for net in [1u8, 2] {
        for host in 1..=16u8 {
            let addr = yoda_netsim::Addr::new(172, 16, net, host);
            if let Some(id) = tb.engine.node_by_addr(addr) {
                ids.push(id);
            }
        }
    }
    ids
}
