//! Figures 10 & 11: TCPStore operation latency and CPU under load,
//! default Memcached (K=1) vs Yoda's persistent TCPStore (K=2 replicas).
//!
//! The paper issues get/set/delete at increasing rates against 10
//! Memcached servers and finds: (1) median op latency stays well under a
//! millisecond at moderate load (0.75 ms at 40K client-req/s/server),
//! (2) adding a second replica costs <24% extra latency (0.18 ms — the
//! replica ops go out in parallel), and (3) replication doubles server
//! CPU (Figure 11).

use std::collections::HashMap;

use bytes::Bytes;
use yoda_bench::report::{f2, print_header, print_kv, Table};
use yoda_bench::arg_usize;
use yoda_netsim::{
    Addr, Ctx, Endpoint, Engine, Node, NodeId, Packet, SimTime, TimerToken, Topology, Zone,
};
use yoda_tcpstore::{
    StoreClient, StoreClientConfig, StoreEvent, StoreOp, StoreServer, StoreServerConfig,
};

const TICK: u32 = 0xA1;

/// Load driver: issues set → get → delete rotations at a fixed rate.
struct Driver {
    client: StoreClient,
    rate_per_sec: f64,
    duration: SimTime,
    started: SimTime,
    seq: u64,
    events: Vec<StoreEvent>,
}

impl Node for Driver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.started = ctx.now();
        ctx.set_timer(SimTime::from_secs_f64(1.0 / self.rate_per_sec), TimerToken::new(TICK));
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let evs = self.client.on_packet(ctx, &pkt);
        self.events.extend(evs);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        match token.kind {
            k if StoreClient::owns_timer_kind(k) => {
                let evs = self.client.on_timer(ctx, token);
                self.events.extend(evs);
            }
            TICK
                if ctx.now().saturating_sub(self.started) < self.duration => {
                    let key = Bytes::from(format!("flow:{}", self.seq % 5_000));
                    match self.seq % 3 {
                        0 => self
                            .client
                            .set(ctx, key, Bytes::from_static(&[7u8; 26]), self.seq),
                        1 => self.client.get(ctx, key, self.seq),
                        _ => self.client.delete(ctx, key, self.seq),
                    }
                    self.seq += 1;
                    ctx.set_timer(
                        SimTime::from_secs_f64(1.0 / self.rate_per_sec),
                        TimerToken::new(TICK),
                    );
                }
            _ => {}
        }
    }
}

struct RunOut {
    get_ms: f64,
    set_ms: f64,
    delete_ms: f64,
    cpu: f64,
}

fn run(ops_per_server: f64, replicas: usize, num_servers: usize, secs: u64) -> RunOut {
    let mut eng = Engine::with_topology(10, Topology::azure_testbed());
    let servers: Vec<Addr> = (1..=num_servers as u8).map(|i| Addr::new(10, 0, 1, i)).collect();
    let server_ids: Vec<NodeId> = servers
        .iter()
        .map(|&s| {
            eng.add_node(
                format!("store-{s}"),
                s,
                Zone::Dc,
                Box::new(StoreServer::new(StoreServerConfig::default(), s)),
            )
        })
        .collect();
    // Client-side op rate, normalized per server; a K-replica op fans
    // out to K servers, so the *server-side* rate is K× this — exactly
    // Figure 11's doubling.
    let total_rate = ops_per_server * num_servers as f64;
    // Spread over several driver nodes, matching the paper's many Yoda
    // instances as clients.
    let drivers = 4;
    let duration = SimTime::from_secs(secs);
    let mut driver_ids = Vec::new();
    for d in 0..drivers {
        let addr = Addr::new(10, 0, 6, d + 1);
        let me = Endpoint::new(addr, 7000);
        let cfg = StoreClientConfig {
            replicas,
            ..StoreClientConfig::default()
        };
        driver_ids.push(eng.add_node(
            format!("driver-{d}"),
            addr,
            Zone::Dc,
            Box::new(Driver {
                client: StoreClient::new(cfg, me, &servers),
                rate_per_sec: total_rate / drivers as f64,
                duration,
                started: SimTime::ZERO,
                seq: d as u64 * 1_000_000,
                events: Vec::new(),
            }),
        ));
    }
    eng.run_for(duration + SimTime::from_secs(1));
    let now = eng.now();
    let cpu: f64 = server_ids
        .iter()
        .map(|&s| eng.node_ref::<StoreServer>(s).cpu_utilization(now))
        .sum::<f64>()
        / num_servers as f64;
    let mut lat: HashMap<StoreOp, Vec<f64>> = HashMap::new();
    for &d in &driver_ids {
        let drv = eng.node_mut::<Driver>(d);
        for (op, hist) in [
            (StoreOp::Get, &drv.client.get_latency),
            (StoreOp::Set, &drv.client.set_latency),
            (StoreOp::Delete, &drv.client.delete_latency),
        ] {
            lat.entry(op).or_default().extend(hist.samples());
        }
    }
    let med = |op: StoreOp| {
        let mut v = lat.get(&op).cloned().unwrap_or_default();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if v.is_empty() {
            f64::NAN
        } else {
            v[v.len() / 2]
        }
    };
    RunOut {
        get_ms: med(StoreOp::Get),
        set_ms: med(StoreOp::Set),
        delete_ms: med(StoreOp::Delete),
        cpu,
    }
}

fn main() {
    print_header(
        "Figure 10 & 11",
        "TCPStore latency and CPU: default Memcached (K=1) vs persistent (K=2)",
    );
    let servers = arg_usize("servers", 4);
    let secs = arg_usize("secs", 3) as u64;
    print_kv("store servers", servers);
    print_kv("duration per point (sim s)", secs);
    let mut lat_table = Table::new(&[
        "client ops/s/server",
        "K",
        "get (ms)",
        "set (ms)",
        "delete (ms)",
        "CPU",
    ]);
    let mut overhead_at_low: Option<f64> = None;
    for &rate in &[8_000.0, 24_000.0, 36_000.0] {
        let mut set_k1 = 0.0;
        for &k in &[1usize, 2] {
            let out = run(rate, k, servers, secs);
            if k == 1 {
                set_k1 = out.set_ms;
            } else if rate == 8_000.0 {
                overhead_at_low = Some((out.set_ms - set_k1) / set_k1);
            }
            lat_table.row(&[
                format!("{rate:.0}"),
                k.to_string(),
                f2(out.get_ms),
                f2(out.set_ms),
                f2(out.delete_ms),
                format!("{:.0}%", out.cpu * 100.0),
            ]);
        }
    }
    lat_table.print();
    if let Some(oh) = overhead_at_low {
        print_kv("set-latency overhead of K=2 at low load", format!("{:.0}%", oh * 100.0));
    }
    print_kv(
        "paper (Fig 10)",
        "median op <1 ms at moderate load; K=2 adds <24% (0.18 ms), ops fan out in parallel",
    );
    print_kv("paper (Fig 11)", "K=2 doubles Memcached CPU vs K=1");
}
