//! Figure 6: HAProxy-style rule-lookup latency vs. number of rules.
//!
//! The paper measures P90 per-connection server-selection latency as the
//! rule table grows 1K→10K and finds it "increases about linearly", with
//! 10K rules ≈ 3× the latency of 1K rules. This binary measures our rules
//! engine's linear scan the same way: random URL requests against tables
//! of increasing size where most rules do not match (the realistic case —
//! a table holds many tenants'/objects' rules, a lookup matches one).
//!
//! Two latencies are reported per table size:
//!
//! * **scan** — wall-clock microseconds of this Rust engine's linear scan
//!   alone (grows strictly linearly in the rule count), and
//! * **selection** — scan plus the fixed per-connection processing cost
//!   that HAProxy's measurement inevitably includes (we use the same
//!   calibrated constant the simulation charges per new connection,
//!   `YodaConfig::per_conn_cpu`). The paper's "10K ≈ 3× 1K" ratio is a
//!   property of this affine curve — a pure scan would be ~10×.

use std::time::Instant;

use yoda_netsim::rng::Rng;
use yoda_bench::report::{f2, print_header, print_kv, Table};
use yoda_bench::{arg_usize, report};
use yoda_core::rules::{Rule, RuleTable, SelectCtx};
use yoda_http::HttpRequest;
use yoda_netsim::Histogram;

/// Builds a table of `n` rules, each matching a distinct URL pattern.
fn build_table(n: usize) -> RuleTable {
    let mut rules = Vec::with_capacity(n);
    for i in 0..n {
        let backend = format!("10.1.{}.{}:80", (i / 250) % 250, i % 250 + 1);
        let line = format!(
            "name=r{i} priority=1 match url=/obj{i}/* action=split {backend}=1"
        );
        rules.push(Rule::parse(&line).expect("valid rule"));
    }
    RuleTable::from_rules(rules)
}

fn main() {
    print_header("Figure 6", "Look-up latency vs rules per instance");
    let lookups = arg_usize("lookups", 20_000);
    // Fixed per-connection processing charged alongside the scan — the
    // same calibrated constant the simulated Yoda instance uses (§7.1).
    let fixed_us = yoda_core::YodaConfig::default().per_conn_cpu.as_micros() as f64;
    let mut table_out = Table::new(&[
        "rules",
        "scan p50 (us)",
        "scan p90 (us)",
        "selection p90 (us)",
    ]);
    let mut sel_1k = 0.0;
    let mut sel_10k = 0.0;
    for &n in &[1_000usize, 2_000, 4_000, 6_000, 8_000, 10_000] {
        let mut table = build_table(n);
        let ctx = SelectCtx::default();
        let mut rng = Rng::seed_from_u64(6);
        let mut hist = Histogram::new();
        for _ in 0..lookups {
            // Random object: the matching rule sits at a uniform position.
            let obj = rng.gen_range(0..n);
            let req = HttpRequest::get(format!("/obj{obj}/x.jpg"));
            let t0 = Instant::now();
            let picked = table.select(&req, &ctx, &mut rng);
            hist.record(t0.elapsed().as_nanos() as f64 / 1000.0);
            assert!(picked.is_some());
        }
        let p90 = hist.percentile(90.0).unwrap_or(0.0);
        let selection = fixed_us + p90;
        if n == 1_000 {
            sel_1k = selection;
        }
        if n == 10_000 {
            sel_10k = selection;
        }
        table_out.row(&[
            n.to_string(),
            f2(hist.percentile(50.0).unwrap_or(0.0)),
            f2(p90),
            f2(selection),
        ]);
    }
    table_out.print();
    print_kv("fixed per-connection cost (us)", report::f1(fixed_us));
    print_kv(
        "selection P90 ratio 10K rules / 1K rules",
        report::f2(sel_10k / sel_1k),
    );
    print_kv("paper claim", "latency grows ~linearly; 10K is ~3x 1K");
}
