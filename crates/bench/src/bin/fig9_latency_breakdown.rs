//! Figure 9 + §7.1 CPU: end-to-end latency breakdown, Yoda vs HAProxy
//! vs no-LB baseline, and instance CPU saturation.
//!
//! The paper (10 KB objects): baseline 133 ms; HAProxy 144 ms
//! (connection 8 ms + LB 5.23 ms on top of baseline(ish)); Yoda 151 ms
//! with only **0.89 ms** of that attributable to TCPStore. §7.1: a Yoda
//! instance saturates at 12K req/s where HAProxy sits at 46% CPU.
//!
//! Measurement: open-loop clients fetch a ~10 KB object; the baseline run
//! connects clients directly to a backend; the LB runs interpose a
//! one-instance LB tier (so the CPU sweep has a well-defined per-instance
//! rate). Storage and backend-connection components come from the Yoda
//! instance's own histograms — the same vantage the paper used.

use yoda_bench::report::{f2, print_header, print_kv, Table};
use yoda_bench::{arg_f64, arg_flag};
use yoda_core::testbed::{Testbed, TestbedConfig};
use yoda_core::YodaInstance;
use yoda_http::{OriginServer, RateClient, RateClientConfig, ServerConfig, SiteCatalog, SiteConfig};
use yoda_netsim::{Addr, Endpoint, Engine, NodeId, SimTime, Topology, Zone};
use yoda_proxy::{ProxyInstance, ProxyTestbed, ProxyTestbedConfig};

/// Finds an object of roughly 10 KB in site 0 of a catalog.
fn small_object(catalog: &SiteCatalog) -> String {
    let site = catalog.site(0);
    site.objects
        .iter()
        .min_by_key(|o| (o.size as i64 - 10 * 1024).abs())
        .map(|o| o.path.clone())
        .expect("non-empty site")
}

struct RunResult {
    median_ms: f64,
    storage_ms: f64,
    connection_ms: f64,
}

fn run_baseline(rate: f64, duration: SimTime) -> RunResult {
    // Clients straight to one backend: Internet + server time only.
    let catalog = std::sync::Arc::new(SiteCatalog::generate(
        9,
        &[SiteConfig::default()],
    ));
    let mut eng = Engine::with_topology(9, Topology::azure_testbed());
    let server_ep = Endpoint::new(Addr::new(10, 1, 0, 1), 80);
    eng.add_node(
        "backend",
        server_ep.addr,
        Zone::Dc,
        Box::new(OriginServer::new(ServerConfig::default(), server_ep, catalog.clone())),
    );
    let path = small_object(&catalog);
    let addr = Addr::new(172, 16, 1, 1);
    let client: NodeId = eng.add_node(
        "client",
        addr,
        Zone::External,
        Box::new(RateClient::new(
            RateClientConfig {
                rate_per_sec: rate,
                target: server_ep,
                object_path: Some(path),
                duration: Some(duration),
                ..RateClientConfig::default()
            },
            addr,
            catalog,
        )),
    );
    eng.run_for(duration + SimTime::from_secs(5));
    let c = eng.node_mut::<RateClient>(client);
    RunResult {
        median_ms: c.fetch_latencies.median().unwrap_or(0.0),
        storage_ms: 0.0,
        connection_ms: 0.0,
    }
}

fn run_yoda(rate: f64, duration: SimTime) -> RunResult {
    let mut tb = Testbed::build(TestbedConfig {
        seed: 9,
        num_instances: 1,
        num_services: 1,
        num_backends: 4,
        ..TestbedConfig::default()
    });
    let path = small_object(&tb.catalog);
    let client = tb.add_rate_client(
        0,
        RateClientConfig {
            rate_per_sec: rate,
            object_path: Some(path),
            duration: Some(duration),
            ..RateClientConfig::default()
        },
    );
    tb.engine.run_for(duration + SimTime::from_secs(5));
    let inst = tb.instances[0];
    let (storage_ms, connection_ms) = {
        let i = tb.engine.node_mut::<YodaInstance>(inst);
        let conn = i.conn_latency.median().unwrap_or(0.0);
        let store_client = i.store_client_mut();
        // Two sets per request (storage-a, storage-b), issued in
        // parallel per replica: critical-path cost = 2 × median set.
        let storage = 2.0 * store_client.set_latency.median().unwrap_or(0.0);
        (storage, conn)
    };
    let c = tb.engine.node_mut::<RateClient>(client);
    RunResult {
        median_ms: c.fetch_latencies.median().unwrap_or(0.0),
        storage_ms,
        connection_ms,
    }
}

fn run_proxy(rate: f64, duration: SimTime) -> RunResult {
    let mut tb = ProxyTestbed::build(ProxyTestbedConfig {
        seed: 9,
        num_instances: 1,
        num_services: 1,
        num_backends: 4,
        ..ProxyTestbedConfig::default()
    });
    let path = small_object(&tb.catalog);
    let client = tb.add_rate_client(
        0,
        RateClientConfig {
            rate_per_sec: rate,
            object_path: Some(path),
            duration: Some(duration),
            ..RateClientConfig::default()
        },
    );
    tb.engine.run_for(duration + SimTime::from_secs(5));
    let c = tb.engine.node_mut::<RateClient>(client);
    RunResult {
        median_ms: c.fetch_latencies.median().unwrap_or(0.0),
        storage_ms: 0.0,
        connection_ms: 0.0,
    }
}

fn cpu_sweep() {
    println!();
    print_header("§7.1 CPU", "Instance CPU utilisation vs request rate (small objects)");
    let duration = SimTime::from_secs(3);
    let mut t = Table::new(&["req/s", "Yoda CPU", "HAProxy CPU"]);
    for rate in [2_000.0, 5_000.0, 8_000.0, 10_000.0, 12_000.0] {
        // Yoda.
        let mut ytb = Testbed::build(TestbedConfig {
            seed: 9,
            num_instances: 1,
            num_services: 1,
            num_backends: 8,
            ..TestbedConfig::default()
        });
        let path = small_object(&ytb.catalog);
        // Spread the load over several client nodes to avoid port reuse.
        for i in 0..4 {
            ytb.add_rate_client(
                0,
                RateClientConfig {
                    rate_per_sec: rate / 4.0,
                    object_path: Some(path.clone()),
                    duration: Some(duration),
                    ..RateClientConfig::default()
                },
            );
            let _ = i;
        }
        ytb.engine.run_for(duration);
        let ycpu = {
            let i = ytb.engine.node_ref::<YodaInstance>(ytb.instances[0]);
            i.cpu_utilization(ytb.engine.now())
        };
        // HAProxy.
        let mut ptb = ProxyTestbed::build(ProxyTestbedConfig {
            seed: 9,
            num_instances: 1,
            num_services: 1,
            num_backends: 8,
            ..ProxyTestbedConfig::default()
        });
        let path = small_object(&ptb.catalog);
        for _ in 0..4 {
            ptb.add_rate_client(
                0,
                RateClientConfig {
                    rate_per_sec: rate / 4.0,
                    object_path: Some(path.clone()),
                    duration: Some(duration),
                    ..RateClientConfig::default()
                },
            );
        }
        ptb.engine.run_for(duration);
        let pcpu = {
            let i = ptb.engine.node_ref::<ProxyInstance>(ptb.instances[0]);
            i.cpu_utilization(ptb.engine.now())
        };
        t.row(&[
            format!("{rate:.0}"),
            format!("{:.0}%", ycpu * 100.0),
            format!("{:.0}%", pcpu * 100.0),
        ]);
    }
    t.print();
    print_kv("paper", "Yoda saturates at 12K req/s; HAProxy is at 46% there (~2.2x cheaper)");
}

fn main() {
    print_header("Figure 9", "Latency breakdown, request->response (10 KB objects, WAN clients)");
    let rate = arg_f64("rate", 400.0);
    let duration = SimTime::from_secs(arg_f64("secs", 10.0) as u64);
    let baseline = run_baseline(rate, duration);
    let yoda = run_yoda(rate, duration);
    let proxy = run_proxy(rate, duration);

    let mut t = Table::new(&["component", "Yoda (ms)", "HAProxy (ms)", "paper Yoda", "paper HAProxy"]);
    t.row(&[
        "end-to-end median".into(),
        f2(yoda.median_ms),
        f2(proxy.median_ms),
        "151".into(),
        "144".into(),
    ]);
    t.row(&[
        "baseline (no LB)".into(),
        f2(baseline.median_ms),
        f2(baseline.median_ms),
        "133".into(),
        "133".into(),
    ]);
    t.row(&[
        "backend connection".into(),
        f2(yoda.connection_ms),
        "-".into(),
        "10.4".into(),
        "8".into(),
    ]);
    t.row(&[
        "storage (TCPStore)".into(),
        f2(yoda.storage_ms),
        "0".into(),
        "0.89".into(),
        "0".into(),
    ]);
    let yoda_lb = yoda.median_ms - baseline.median_ms - yoda.storage_ms - yoda.connection_ms;
    let proxy_lb = proxy.median_ms - baseline.median_ms;
    t.row(&[
        "LB processing (residual)".into(),
        f2(yoda_lb.max(0.0)),
        f2(proxy_lb.max(0.0)),
        "8.2".into(),
        "5.23".into(),
    ]);
    t.print();
    print_kv(
        "key claim",
        "decoupling flow state into TCPStore adds <1 ms to a ~150 ms request",
    );

    if !arg_flag("no-cpu") {
        cpu_sweep();
    }
}
