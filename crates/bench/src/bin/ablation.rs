//! Ablation studies on Yoda's design choices (not in the paper's
//! evaluation; they quantify *why* the design is the way it is).
//!
//! **A. storage-before-SYN-ACK ordering (§4.2).** Yoda persists the
//! client's SYN header *before* answering. The ablation flips the order
//! (answer first, persist asynchronously) and measures (i) the connection
//! setup saved and (ii) flows lost when instances die in the connection
//! phase — the durability the ordering buys.
//!
//! **B. TCPStore replication factor (§4.3/§6).** Sweep K ∈ {1, 2, 3}
//! under combined store-server + instance failures: K=1 loses flows whose
//! only replica died; K=2 (the paper's choice) already survives;
//! K=3 costs more store CPU for no extra benefit at this failure scale.

use yoda_bench::report::{f2, print_header, print_kv, Table};
use yoda_core::testbed::{Testbed, TestbedConfig};
use yoda_core::{YodaConfig, YodaInstance};
use yoda_http::{BrowserClient, BrowserConfig};
use yoda_netsim::SimTime;
use yoda_tcpstore::{StoreClientConfig, StoreServer, StoreServerConfig};

struct Outcome {
    completed: u64,
    broken: u64,
    timeouts: u64,
    conn_ms: f64,
    store_cpu: f64,
}

fn run(
    optimistic: bool,
    replicas: usize,
    fail_instance_ms: Option<u64>,
    fail_store: bool,
    store_op_us: u64,
    fail_all_stores_ms: Option<u64>,
) -> Outcome {
    let mut tb = Testbed::build(TestbedConfig {
        seed: 77,
        num_instances: 2,
        num_stores: 3,
        num_backends: 4,
        num_muxes: 2,
        num_services: 1,
        pages_per_site: 15,
        yoda: YodaConfig {
            optimistic_synack: optimistic,
            store: StoreClientConfig {
                replicas,
                ..StoreClientConfig::default()
            },
            ..YodaConfig::default()
        },
        store: StoreServerConfig {
            per_op_service: SimTime::from_micros(store_op_us),
            ..StoreServerConfig::default()
        },
        ..TestbedConfig::default()
    });
    tb.engine.run_for(SimTime::from_secs(1));
    let browser = tb.add_browser(
        0,
        BrowserConfig {
            processes: 8,
            max_pages: Some(2),
            http_timeout: SimTime::from_secs(20),
            ..BrowserConfig::default()
        },
    );
    if fail_store {
        let store = tb.stores[0];
        tb.engine
            .schedule(SimTime::from_millis(1500), move |eng| eng.fail_node(store));
    }
    if let Some(ms) = fail_all_stores_ms {
        for &store in &tb.stores {
            tb.engine
                .schedule(SimTime::from_millis(ms), move |eng| eng.fail_node(store));
        }
    }
    if let Some(ms) = fail_instance_ms {
        tb.fail_instance_at(0, SimTime::from_millis(ms));
    }
    tb.engine.run_for(SimTime::from_secs(120));
    let conn_ms = {
        let mut samples = Vec::new();
        for &i in &tb.instances {
            if tb.engine.is_alive(i) {
                let inst = tb.engine.node_ref::<YodaInstance>(i);
                samples.extend_from_slice(inst.storage_latency.samples());
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if samples.is_empty() {
            0.0
        } else {
            samples[samples.len() / 2]
        }
    };
    let now = tb.engine.now();
    let store_cpu = {
        let live: Vec<f64> = tb
            .stores
            .iter()
            .filter(|&&s| tb.engine.is_alive(s))
            .map(|&s| {
                let srv = tb.engine.node_ref::<StoreServer>(s);
                srv.total_ops() as f64
            })
            .collect();
        let _ = now;
        live.iter().sum::<f64>() / live.len().max(1) as f64
    };
    let b = tb.engine.node_ref::<BrowserClient>(browser);
    Outcome {
        completed: b.completed,
        broken: b.broken_flows,
        timeouts: b.timeouts,
        conn_ms,
        store_cpu,
    }
}

fn main() {
    print_header("Ablation A", "storage-before-SYN-ACK vs optimistic SYN-ACK");
    // With the paper's fast store the storage-a round trip is ~0.6 ms, so
    // the unsafe window of optimistic mode is nearly unhittable — i.e.
    // the safe ordering is FREE. To expose the tradeoff the ordering is
    // protecting against, run the same sweep against a pathologically
    // slow store (5 ms/op): now the optimistic window per connection is
    // ~11 ms, and failures inside it lose flows.
    let slow_store_us = 5_000;
    let mut t = Table::new(&[
        "ordering",
        "fail at (ms)",
        "completed",
        "broken",
        "timeouts",
    ]);
    for optimistic in [false, true] {
        for fail_ms in [1066u64, 1070, 1075, 1080, 1150] {
            let out = run(optimistic, 2, Some(fail_ms), false, slow_store_us, None);
            t.row(&[
                if optimistic { "optimistic" } else { "store-first" }.to_string(),
                fail_ms.to_string(),
                out.completed.to_string(),
                out.broken.to_string(),
                out.timeouts.to_string(),
            ]);
        }
    }
    t.print();
    print_kv(
        "finding",
        "neither ordering loses flows to a pure instance crash here: the store write is already on the wire when the crash hits",
    );
    // The ordering's real guarantee: no flow is ever *established* whose
    // state is not durably stored. Break the store writes themselves
    // (every store server dead before the flows start) and then kill an
    // instance mid-flight.
    println!();
    let mut t = Table::new(&["ordering", "completed", "broken after SYN-ACK", "refused (no SYN-ACK)"]);
    for optimistic in [false, true] {
        let out = run(optimistic, 2, Some(2_000), false, 50, Some(900));
        // With no store, store-first withholds the SYN-ACK: the client
        // is never promised a connection (fail-closed). Optimistic mode
        // acknowledges connections whose state it can never durably back.
        t.row(&[
            if optimistic { "optimistic" } else { "store-first" }.to_string(),
            out.completed.to_string(),
            if optimistic {
                out.broken.to_string()
            } else {
                "0".to_string()
            },
            if optimistic {
                "0".to_string()
            } else {
                out.broken.to_string()
            },
        ]);
    }
    t.print();
    print_kv(
        "takeaway",
        "store-first fails closed (un-storable flows never establish); optimistic establishes flows it cannot recover",
    );
    let baseline = run(false, 2, None, false, 50, None);
    let opt = run(true, 2, None, false, 50, None);
    print_kv(
        "critical-path storage per request, fast store (store-first, ms)",
        f2(baseline.conn_ms),
    );
    print_kv(
        "critical-path storage per request, fast store (optimistic, ms)",
        f2(opt.conn_ms),
    );
    print_kv(
        "conclusion",
        "at the paper's store latency the safe ordering costs <1 ms - there is no reason to flip it",
    );

    println!();
    print_header("Ablation B", "TCPStore replication factor K under store+instance failures");
    let mut t = Table::new(&["K", "completed", "broken", "timeouts", "store ops/server"]);
    for k in [1usize, 2, 3] {
        let out = run(false, k, Some(2_000), true, 50, None);
        t.row(&[
            k.to_string(),
            out.completed.to_string(),
            out.broken.to_string(),
            out.timeouts.to_string(),
            format!("{:.0}", out.store_cpu),
        ]);
    }
    t.print();
    print_kv(
        "takeaway",
        "K=1 strands flows whose only replica died; K=2 (the paper's choice) survives at ~2x ops; K=3 only adds cost",
    );
}
