//! Figure 15: max-to-average traffic ratio per VIP → cost reduction.
//!
//! "By using YODA, these online services can save L7 LB cost by 1.07x to
//! 50.3x (average = 3.7x across all VIPs)." The ratio of each VIP's peak
//! 10-minute traffic to its daily average is the factor by which a
//! dedicated (peak-provisioned) HAProxy deployment over-provisions
//! relative to Yoda-as-a-service (which bills average usage).

use yoda_bench::report::{f2, print_header, print_kv, Table};
use yoda_bench::arg_usize;
use yoda_trace::{Trace, TraceConfig};

fn main() {
    print_header(
        "Figure 15",
        "Max-to-average traffic ratio for all VIPs (24h production-style trace)",
    );
    let num_vips = arg_usize("vips", 110);
    let trace = Trace::generate(&TraceConfig {
        num_vips,
        ..TraceConfig::default()
    });
    print_kv("VIPs", trace.vips.len());
    print_kv("bins (10-min)", trace.bins());
    print_kv("total L7 rules", trace.total_rules());

    let ratios = trace.max_avg_ratios();
    let mut table = Table::new(&["vip rank", "mean traffic (req/s)", "max/avg ratio"]);
    // Print every 10th VIP (the figure's x-axis is all VIPs, sorted by
    // decreasing traffic).
    for (i, v) in trace.vips.iter().enumerate() {
        if i % 10 == 0 || i == trace.vips.len() - 1 {
            table.row(&[
                i.to_string(),
                f2(v.mean_traffic()),
                f2(ratios[i]),
            ]);
        }
    }
    table.print();

    let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().copied().fold(0.0f64, f64::max);
    print_kv("min max/avg ratio (measured)", f2(min));
    print_kv("max max/avg ratio (measured)", f2(max));
    print_kv("mean max/avg ratio = cost reduction (measured)", f2(trace.mean_max_avg_ratio()));
    print_kv("paper", "1.07x - 50.3x, average 3.7x");
}
