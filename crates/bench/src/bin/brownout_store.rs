//! Store brownout: availability under a gray failure of the whole store
//! tier.
//!
//! Every TCPStore server is slowed `factor`× for a window mid-run — none
//! are killed, all keep answering pings, so classic liveness health
//! checks see a healthy tier while every flow-record write crawls. The
//! gray-failure machinery keeps the data path available anyway: hedged
//! reads steer around slow replicas, bounded retries absorb stragglers,
//! and instances that see consecutive write timeouts enter degraded mode
//! (serve flows immediately, queue records in a bounded write-behind
//! buffer, drain after the heal).
//!
//! The headline: with all stores 10× slow, new-connection success stays
//! ≥99% with bounded p99 — against a baseline where SYN-ACKs block on
//! store acks and the whole handshake path inherits the brownout.

use yoda_bench::report::{f2, print_header, print_kv, pct};
use yoda_bench::storestats::StoreStatsSummary;
use yoda_bench::{arg_f64, arg_usize};
use yoda_core::instance::YodaInstance;
use yoda_core::testbed::{Testbed, TestbedConfig};
use yoda_http::{BrowserClient, BrowserConfig};
use yoda_netsim::{Histogram, SimTime};
use yoda_tcpstore::StoreServerConfig;

struct Out {
    completed: u64,
    started: u64,
    timeouts: u64,
    resets: u64,
    broken: u64,
    p50_ms: f64,
    p99_ms: f64,
    degraded_entries: u64,
    wb_enqueued: u64,
    wb_drained: u64,
    wb_dropped: u64,
    shed_reads: u64,
    store_stats: StoreStatsSummary,
}

impl Out {
    /// Fraction of finished fetches that succeeded (fetches still in
    /// flight when the run ends are neither success nor failure).
    fn success(&self) -> f64 {
        let finished = self.completed + self.timeouts + self.resets + self.broken;
        if finished == 0 {
            return 0.0;
        }
        self.completed as f64 / finished as f64
    }
}

fn run(factor: f64, browse_secs: u64) -> Out {
    // A modest store tier (8 ms/op instead of the stock 50 µs) so a 10×
    // brownout saturates the tier and queues ops past the 100 ms timeout:
    // writes stop completing and the full hedge/retry/degraded-mode
    // machinery engages. At factor 1 the tier is comfortably
    // over-provisioned for this load.
    let mut tb = Testbed::build(TestbedConfig {
        num_instances: 4,
        num_stores: 3,
        num_muxes: 2,
        num_backends: 8,
        num_services: 2,
        store: StoreServerConfig {
            per_op_service: SimTime::from_millis(8),
            ..StoreServerConfig::default()
        },
        ..TestbedConfig::default()
    });
    tb.engine.run_for(SimTime::from_secs(1));
    let browser_cfg = BrowserConfig {
        processes: 4,
        retries: 2,
        http_timeout: SimTime::from_secs(10),
        ..BrowserConfig::default()
    };
    let ids: Vec<_> = (0..2).map(|s| tb.add_browser(s, browser_cfg.clone())).collect();
    // Brownout window: the WHOLE store tier browns out shortly after the
    // browsers ramp, heals well before the deadline so the write-behind
    // queues drain on camera.
    let at = SimTime::from_secs(4);
    let heal = at + SimTime::from_secs(browse_secs / 2);
    for i in 0..tb.stores.len() {
        tb.slowdown_store_at(i, factor, at);
        tb.slowdown_store_at(i, 1.0, heal);
    }
    tb.run_for(SimTime::from_secs(browse_secs));

    let mut lat = Histogram::new();
    let mut out = Out {
        completed: 0,
        started: 0,
        timeouts: 0,
        resets: 0,
        broken: 0,
        p50_ms: 0.0,
        p99_ms: 0.0,
        degraded_entries: 0,
        wb_enqueued: 0,
        wb_drained: 0,
        wb_dropped: 0,
        shed_reads: 0,
        store_stats: StoreStatsSummary::default(),
    };
    for &id in &ids {
        let b = tb.engine.node_ref::<BrowserClient>(id);
        out.completed += b.completed;
        out.started += b.started_fetches;
        out.timeouts += b.timeouts;
        out.resets += b.resets;
        out.broken += b.broken_flows;
        lat.merge(&b.request_latencies);
    }
    out.p50_ms = lat.percentile(50.0).unwrap_or(f64::NAN);
    out.p99_ms = lat.percentile(99.0).unwrap_or(f64::NAN);
    for &i in &tb.instances {
        let inst = tb.engine.node_ref::<YodaInstance>(i);
        out.degraded_entries += inst.degraded_entries;
        out.wb_enqueued += inst.wb_enqueued;
        out.wb_drained += inst.wb_drained;
        out.wb_dropped += inst.wb_dropped;
        out.shed_reads += inst.shed_reads;
        out.store_stats.absorb(inst.store_client());
    }
    out
}

fn main() {
    print_header(
        "Store brownout",
        "gray failure of the whole store tier: hedged ops + degraded-mode instances",
    );
    let factor = arg_f64("factor", 10.0);
    let secs = arg_usize("secs", 30) as u64;
    print_kv("slowdown factor (all stores)", factor);
    print_kv("run length (sim s)", secs);

    let healthy = run(1.0, secs);
    let brown = run(factor, secs);

    print_kv("healthy: success", pct(healthy.success()));
    print_kv("healthy: p50/p99 (ms)", format!("{} / {}", f2(healthy.p50_ms), f2(healthy.p99_ms)));
    print_kv("brownout: success", pct(brown.success()));
    print_kv("brownout: p50/p99 (ms)", format!("{} / {}", f2(brown.p50_ms), f2(brown.p99_ms)));
    print_kv(
        "availability delta (healthy - brownout)",
        pct(healthy.success() - brown.success()),
    );
    print_kv(
        "brownout: timeouts/resets/broken",
        format!("{} / {} / {}", brown.timeouts, brown.resets, brown.broken),
    );
    print_kv("brownout: degraded-mode entries", brown.degraded_entries);
    print_kv(
        "brownout: write-behind enq/drained/dropped",
        format!(
            "{} / {} / {}",
            brown.wb_enqueued, brown.wb_drained, brown.wb_dropped
        ),
    );
    print_kv("brownout: recovery reads shed", brown.shed_reads);
    print_kv(
        "brownout: store ops timeouts/hedges/retries/quarantines",
        format!(
            "{} / {} / {} / {}",
            brown.store_stats.timeouts,
            brown.store_stats.hedges,
            brown.store_stats.retries,
            brown.store_stats.quarantines
        ),
    );
    println!("  per-replica store-client view (brownout run):");
    brown.store_stats.table().print();
}
