//! Figure 14: safe user-policy updates (make-before-break).
//!
//! Paper scenario: one service with 3 equal-weight backends. The operator
//! replaces a VM using make-before-break: at t=10 s a fourth server is
//! added (equal split across 4), at t=20 s Srv-1 is removed (equal across
//! the remaining 3), and at t=30 s the weights become 1:1:2 (Srv-4 has 2×
//! the cores). The measured per-server traffic fractions track the policy
//! at each step, and **no client flow is broken** — existing connections
//! keep flowing to their previously-selected server ("YODA instances only
//! apply new policies to new connections").

use yoda_bench::report::{pct, print_header, print_kv, Table};
use yoda_bench::{arg_f64, TimeSeries};
use yoda_core::testbed::{Testbed, TestbedConfig};
use yoda_http::{OriginServer, RateClient, RateClientConfig};
use yoda_netsim::SimTime;

fn main() {
    print_header("Figure 14", "User policy update without breaking flows");
    let rate = arg_f64("rate", 800.0);
    let mut tb = Testbed::build(TestbedConfig {
        seed: 14,
        num_instances: 4,
        num_services: 1,
        num_backends: 4,
        ..TestbedConfig::default()
    });
    let vip = tb.vips[0];
    let b: Vec<String> = tb.service_backends[0]
        .iter()
        .map(|ep| ep.to_string())
        .collect();
    assert!(b.len() >= 4);

    // Policies over time. Srv-4 (index 3) is the replacement VM.
    let p0 = format!("name=r priority=1 match * action=split {}=1 {}=1 {}=1", b[0], b[1], b[2]);
    let p1 = format!(
        "name=r priority=1 match * action=split {}=1 {}=1 {}=1 {}=1",
        b[0], b[1], b[2], b[3]
    );
    let p2 = format!("name=r priority=1 match * action=split {}=1 {}=1 {}=1", b[1], b[2], b[3]);
    let p3 = format!("name=r priority=1 match * action=split {}=1 {}=1 {}=2", b[1], b[2], b[3]);
    // The build-time default policy (equal across all 4) is installed at
    // t=0; apply the experiment's initial 3-way policy after it settles
    // (in-flight control packets can reorder under jitter).
    tb.set_policy_at(vip, &p0, SimTime::from_millis(500));
    tb.set_policy_at(vip, &p1, SimTime::from_secs(10));
    tb.set_policy_at(vip, &p2, SimTime::from_secs(20));
    tb.set_policy_at(vip, &p3, SimTime::from_secs(30));

    // Load: open-loop small-object fetches.
    let obj = tb
        .catalog
        .site(0)
        .objects
        .iter()
        .min_by_key(|o| o.size)
        .map(|o| o.path.clone())
        .expect("objects");
    let mut clients = Vec::new();
    for _ in 0..4 {
        clients.push(tb.add_rate_client(
            0,
            RateClientConfig {
                rate_per_sec: rate / 4.0,
                object_path: Some(obj.clone()),
                duration: Some(SimTime::from_secs(39)),
                ..RateClientConfig::default()
            },
        ));
    }

    // Sample each backend's share of requests per 2-second window.
    let series = TimeSeries::new();
    let backends = tb.backends.clone();
    series.install(
        &mut tb.engine,
        SimTime::from_secs(2),
        SimTime::from_secs(2),
        SimTime::from_secs(40),
        move |eng| {
            let mut counts = Vec::new();
            let now = eng.now();
            for &id in &backends {
                let srv = eng.node_mut::<OriginServer>(id);
                counts.push(srv.requests_window as f64);
                srv.reset_window(now);
            }
            let total: f64 = counts.iter().sum();
            if total > 0.0 {
                counts.iter().map(|c| c / total).collect()
            } else {
                vec![0.0; counts.len()]
            }
        },
    );
    tb.engine.run_for(SimTime::from_secs(42));

    let mut table = Table::new(&["t (s)", "Srv-1", "Srv-2", "Srv-3", "Srv-4", "phase"]);
    for (time, shares) in series.rows() {
        let t = time.as_secs_f64();
        let phase = match t {
            x if x <= 10.0 => "equal thirds",
            x if x <= 20.0 => "make: equal quarters",
            x if x <= 30.0 => "break: thirds w/o Srv-1",
            _ => "weights 1:1:2",
        };
        table.row(&[
            format!("{t:.0}"),
            pct(shares[0]),
            pct(shares[1]),
            pct(shares[2]),
            pct(shares[3]),
            phase.to_string(),
        ]);
    }
    table.print();

    let mut completed = 0;
    let mut failed = 0;
    for id in clients {
        let c = tb.engine.node_ref::<RateClient>(id);
        completed += c.completed;
        failed += c.timeouts + c.resets;
    }
    print_kv("requests completed", completed);
    print_kv("requests broken", failed);
    print_kv(
        "paper",
        "traffic split follows each policy step; no client flow broken",
    );
}
