//! Figure 17 (beyond the paper): adaptive backend selection tail latency.
//!
//! The paper's policies are static (weighted split / least-loaded over
//! the instance's own connection counts). `yoda-balance` adds a
//! Prequal-style probing policy (`action=prequal`): instances probe a
//! power-of-d sample of backends for requests-in-flight and service
//! latency, keep a small reuse-bounded pool of fresh probes, and pick
//! hot-cold lexicographically (avoid the RIF-hot tail, then lowest
//! latency). This experiment compares roundrobin / leastload / prequal
//! under three scenarios:
//!
//! * **uniform** — all 6 backends nominal (prequal must not tax the
//!   balanced case: P50 within 10% of roundrobin),
//! * **one-slow** — backend 0 serves 5× slower for the whole run
//!   (prequal target: ≥2× better P99 than roundrobin),
//! * **degrade-recover** — backend 0 degrades 5× at t=6 s and recovers
//!   at t=14 s (the policy must both shed and re-admit it).
//!
//! Load is a square wave (base 2 400 req/s, bursts of 4 200 req/s, 4 s
//! period, 30% duty) against backends whose nominal capacity is
//! ~2 380 req/s each, so the slow backend is overloaded whenever it
//! receives an equal share. `rif imbalance` is max/mean requests in
//! flight across backends, sampled every 100 ms.

use std::collections::BTreeMap;

use yoda_balance::ProbeConfig;
use yoda_bench::report::{f2, print_header, print_kv, Table};
use yoda_bench::{arg_f64, arg_flag, arg_usize, TimeSeries};
use yoda_core::testbed::{Testbed, TestbedConfig};
use yoda_core::{YodaConfig, YodaInstance};
use yoda_http::{OriginServer, RateClient, RateClientConfig};
use yoda_netsim::stats::Histogram;
use yoda_netsim::{NodeId, SimTime};
use yoda_trace::{AdaptiveScenario, BurstyLoad};

const NUM_BACKENDS: usize = 6;
const CLIENTS: usize = 4;

struct RunOutcome {
    p50: f64,
    p90: f64,
    p99: f64,
    completed: u64,
    timeouts: u64,
    resets: u64,
    /// Mean of (max RIF / mean RIF) over samples with any load.
    rif_imbalance: f64,
}

fn policy_rules(name: &str, tb: &Testbed) -> String {
    let backends: Vec<String> = tb.service_backends[0].iter().map(|b| b.to_string()).collect();
    match name {
        "roundrobin" => tb.equal_split_rules(0),
        "leastload" => format!(
            "name=ll priority=1 match * action=leastload {}",
            backends.join(" ")
        ),
        "prequal" => format!(
            "name=pq priority=1 match * action=prequal {}",
            backends.join(" ")
        ),
        other => panic!("unknown policy {other}"),
    }
}

fn run_one(policy: &str, scenario: &AdaptiveScenario, load: BurstyLoad, run: SimTime) -> RunOutcome {
    let mut tb = Testbed::build(TestbedConfig {
        seed: 17,
        num_instances: 4,
        num_stores: 3,
        num_backends: NUM_BACKENDS,
        num_muxes: 3,
        num_services: 1,
        pages_per_site: 20,
        yoda: YodaConfig {
            // Probe fast enough that the reuse-bounded pool keeps up
            // with ~1 050 picks/s per instance at burst peaks
            // (500 ticks/s × d=3 × max_uses=2 = 3 000 uses/s).
            probe: ProbeConfig {
                period: SimTime::from_millis(2),
                ..ProbeConfig::default()
            },
            ..YodaConfig::default()
        },
        ..TestbedConfig::default()
    });
    let vip = tb.vips[0];
    let rules = policy_rules(policy, &tb);
    // After (not racing) the builder's t=0 equal-split install: two
    // same-instant installs would reach each instance in
    // jitter-dependent order.
    tb.set_policy_at(vip, &rules, SimTime::from_millis(200));

    // ~10 KB object so per-request backend cost is the calibrated
    // 800 µs + 40 µs (≈2 380 req/s nominal capacity per 2-core backend).
    let obj = tb
        .catalog
        .site(0)
        .objects
        .iter()
        .min_by_key(|o| (o.size as i64 - 10 * 1024).abs())
        .map(|o| o.path.clone())
        .expect("objects");

    // Open-loop clients start at t=1 s (control plane warm), stop at
    // 1 s + run; the square wave is applied through `set_rate` at each
    // load edge.
    let start = SimTime::from_secs(1);
    let clients: Vec<NodeId> = (0..CLIENTS)
        .map(|_| {
            tb.add_rate_client(
                0,
                RateClientConfig {
                    rate_per_sec: load.rate_at(SimTime::ZERO) / CLIENTS as f64,
                    object_path: Some(obj.clone()),
                    duration: Some(start + run),
                    ..RateClientConfig::default()
                },
            )
        })
        .collect();
    for edge in load.edges(run) {
        let rate = load.rate_at(edge) / CLIENTS as f64;
        let ids = clients.clone();
        tb.engine.schedule(start + edge, move |eng| {
            for &id in &ids {
                eng.node_mut::<RateClient>(id).set_rate(rate);
            }
        });
    }

    // Scripted backend capacity: apply the scenario's speed factors at
    // t=0 and at every phase edge.
    let backend_ids = tb.backends.clone();
    let mut edges = scenario.edges();
    edges.insert(0, SimTime::ZERO);
    edges.dedup();
    for edge in edges {
        let ids = backend_ids.clone();
        let sc = scenario.clone();
        tb.engine.schedule(edge, move |eng| {
            let now = eng.now();
            for (i, &id) in ids.iter().enumerate() {
                eng.node_mut::<OriginServer>(id).set_speed_factor(sc.factor_at(i, now));
            }
        });
    }

    // Sample requests-in-flight per backend every 100 ms.
    let series = TimeSeries::new();
    let ids = backend_ids.clone();
    series.install(
        &mut tb.engine,
        start,
        SimTime::from_millis(100),
        start + run,
        move |eng| {
            let rifs: Vec<f64> = ids
                .iter()
                .map(|&id| eng.node_ref::<OriginServer>(id).in_flight() as f64)
                .collect();
            let max = rifs.iter().cloned().fold(0.0f64, f64::max);
            let mean = rifs.iter().sum::<f64>() / rifs.len() as f64;
            vec![max, mean]
        },
    );

    tb.engine.run_for(start + run + SimTime::from_secs(4));

    if arg_flag("probestats") {
        for &id in &tb.instances {
            let inst = tb.engine.node_ref::<YodaInstance>(id);
            let p = inst.prober();
            println!(
                "  [{policy}] instance {id:?}: sent={} answered={} timed_out={} quarantines={}",
                p.probes_sent, p.probes_answered, p.probes_timed_out, p.quarantines
            );
        }
    }

    let mut latencies = Histogram::new();
    let mut completed = 0;
    let mut timeouts = 0;
    let mut resets = 0;
    for &id in &clients {
        let c = tb.engine.node_ref::<RateClient>(id);
        latencies.merge(&c.latencies);
        completed += c.completed;
        timeouts += c.timeouts;
        resets += c.resets;
    }
    let mut ratios = Vec::new();
    for (_, vals) in series.rows() {
        if vals[1] > 0.0 {
            ratios.push(vals[0] / vals[1]);
        }
    }
    let rif_imbalance = if ratios.is_empty() {
        0.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    };
    RunOutcome {
        p50: latencies.percentile(50.0).unwrap_or(0.0),
        p90: latencies.percentile(90.0).unwrap_or(0.0),
        p99: latencies.percentile(99.0).unwrap_or(0.0),
        completed,
        timeouts,
        resets,
        rif_imbalance,
    }
}

fn main() {
    print_header(
        "Figure 17 (beyond the paper)",
        "Adaptive backend selection: tail latency under heterogeneous backends",
    );
    let run = SimTime::from_secs(arg_usize("secs", 20) as u64);
    let slow_factor = arg_f64("slow", 5.0);
    let load = BurstyLoad {
        base_rps: arg_f64("base", 2_400.0),
        burst_rps: arg_f64("burst", 4_200.0),
        period: SimTime::from_secs(4),
        duty: 0.3,
    };
    print_kv(
        "load",
        format!(
            "{}..{} req/s square wave (4 s period, 30% duty), {NUM_BACKENDS} backends",
            load.base_rps, load.burst_rps
        ),
    );

    let scenarios: Vec<(&str, AdaptiveScenario)> = vec![
        ("uniform", AdaptiveScenario::uniform()),
        (
            "one-slow",
            AdaptiveScenario::one_slow(0, slow_factor, SimTime::from_secs(3_600)),
        ),
        (
            "degrade-recover",
            AdaptiveScenario::degrade_recover(
                0,
                slow_factor,
                SimTime::from_secs(6),
                SimTime::from_secs(14),
            ),
        ),
    ];
    let policies = ["roundrobin", "leastload", "prequal"];

    let mut outcomes: BTreeMap<(String, String), RunOutcome> = BTreeMap::new();
    for (sname, scenario) in &scenarios {
        println!();
        println!("scenario: {sname}");
        let mut table = Table::new(&[
            "policy",
            "p50 (ms)",
            "p90 (ms)",
            "p99 (ms)",
            "completed",
            "timeouts",
            "resets",
            "rif imbalance",
        ]);
        for policy in policies {
            let out = run_one(policy, scenario, load, run);
            table.row(&[
                policy.to_string(),
                f2(out.p50),
                f2(out.p90),
                f2(out.p99),
                out.completed.to_string(),
                out.timeouts.to_string(),
                out.resets.to_string(),
                f2(out.rif_imbalance),
            ]);
            outcomes.insert((sname.to_string(), policy.to_string()), out);
        }
        table.print();
    }

    // Headline comparisons for EXPERIMENTS.md.
    println!();
    let rr_uni = &outcomes[&("uniform".to_string(), "roundrobin".to_string())];
    let pq_uni = &outcomes[&("uniform".to_string(), "prequal".to_string())];
    let rr_slow = &outcomes[&("one-slow".to_string(), "roundrobin".to_string())];
    let pq_slow = &outcomes[&("one-slow".to_string(), "prequal".to_string())];
    print_kv(
        "uniform p50 prequal/roundrobin",
        f2(pq_uni.p50 / rr_uni.p50.max(f64::MIN_POSITIVE)),
    );
    print_kv(
        "one-slow p99 roundrobin/prequal",
        f2(rr_slow.p99 / pq_slow.p99.max(f64::MIN_POSITIVE)),
    );
    print_kv(
        "targets",
        "uniform p50 ratio within 1.10; one-slow p99 speedup >= 2.0",
    );
}
