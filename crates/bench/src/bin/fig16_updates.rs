//! Figure 16: the VIP-assignment update study (paper §8.2).
//!
//! Replays the 24-hour trace at 10-minute granularity, computing a fresh
//! VIP→instance assignment each round under three schemes:
//!
//! * **all-to-all** — every VIP on every instance (fewest instances, all
//!   rules everywhere),
//! * **YODA-no-limit** — the Figure 7 ILP without Eq. 4–7,
//! * **YODA-limit** — the full ILP with transient-capacity and δ=10%
//!   migration constraints (relaxed in +10% steps when infeasible).
//!
//! Reports the paper's four panels: (b) median rules per instance
//! normalized to all-to-all, (c) instances used, (d) fraction of
//! instances transiently overloaded during the update, (e) fraction of
//! connections migrated — plus per-round solve times.

use std::time::Instant;

use yoda_assign::model::transition_stats;
use yoda_assign::{all_to_all, solve_greedy, Assignment, GreedyConfig};
use yoda_bench::report::{f2, pct, print_header, print_kv, Table};
use yoda_bench::arg_usize;
use yoda_netsim::Histogram;
use yoda_trace::{assign_input_for_bin, AssignParams, Trace, TraceConfig};

struct SchemeState {
    prev: Option<Assignment>,
    instances: Histogram,
    rules_ratio: Histogram,
    overload: Histogram,
    migrated: Histogram,
    solve_ms: Histogram,
    effective_delta_max: f64,
}

impl SchemeState {
    fn new() -> Self {
        SchemeState {
            prev: None,
            instances: Histogram::new(),
            rules_ratio: Histogram::new(),
            overload: Histogram::new(),
            migrated: Histogram::new(),
            solve_ms: Histogram::new(),
            effective_delta_max: 0.0,
        }
    }
}

fn median_nonzero(values: &[u64]) -> f64 {
    let mut v: Vec<u64> = values.iter().copied().filter(|&x| x > 0).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_unstable();
    v[v.len() / 2] as f64
}

fn main() {
    print_header("Figure 16", "VIP assignment update study (24h trace, 10-min rounds)");
    let bins = arg_usize("bins", 144);
    let num_vips = arg_usize("vips", 110);
    let trace = Trace::generate(&TraceConfig {
        num_vips,
        bins,
        ..TraceConfig::default()
    });
    print_kv("VIPs", trace.vips.len());
    print_kv("rounds", bins);
    print_kv("rule capacity R_y (5ms target per Fig. 6)", "2000 rules");
    print_kv("replicas n_v", "4 x t_v / T_y (4x redundancy)");
    print_kv("migration budget (YODA-limit)", "10% (+10% steps when infeasible)");

    let base = AssignParams::default();
    let mut limit = SchemeState::new();
    let mut nolimit = SchemeState::new();
    let mut a2a_instances = Histogram::new();

    for bin in 0..bins {
        // All-to-all baseline.
        let input_a2a = assign_input_for_bin(&trace, bin, &base, None);
        let a2a = all_to_all(&input_a2a);
        a2a_instances.record(a2a.instances as f64);
        let a2a_rules = a2a.rules_per_instance as f64;

        for (scheme, delta) in [(&mut nolimit, None), (&mut limit, Some(0.10))] {
            let params = AssignParams {
                migration_limit: delta,
                ..base
            };
            let greedy_cfg = GreedyConfig {
                // No-limit: nothing anchors the optimizer round-to-round.
                shuffle_seed: delta.is_none().then_some(bin as u64),
                ..GreedyConfig::default()
            };
            let input = assign_input_for_bin(&trace, bin, &params, scheme.prev.clone());
            let t0 = Instant::now();
            let out = solve_greedy(&input, &greedy_cfg).expect("feasible assignment");
            scheme.solve_ms.record(t0.elapsed().as_secs_f64() * 1000.0);
            let used = out.assignment.num_instances();
            scheme.instances.record(used as f64);
            let rules = out.assignment.rules_per_instance(&input.vips);
            scheme.rules_ratio.record(median_nonzero(&rules) / a2a_rules);
            if let Some(prev) = &scheme.prev {
                let stats = transition_stats(prev, &out.assignment, &input.vips, base.traffic_capacity);
                scheme.overload.record(stats.overloaded_fraction);
                scheme.migrated.record(stats.migrated_fraction);
            }
            if let Some(d) = out.effective_delta {
                scheme.effective_delta_max = scheme.effective_delta_max.max(d);
            }
            scheme.prev = Some(out.assignment);
        }
    }

    println!();
    println!("(b) median rules per instance, normalized to all-to-all:");
    let mut t = Table::new(&["scheme", "median", "min", "max"]);
    for (name, s) in [("YODA-no-limit", &mut nolimit), ("YODA-limit", &mut limit)] {
        t.row(&[
            name.to_string(),
            pct(s.rules_ratio.median().unwrap_or(0.0)),
            pct(s.rules_ratio.min().unwrap_or(0.0)),
            pct(s.rules_ratio.max().unwrap_or(0.0)),
        ]);
    }
    t.print();
    print_kv("paper", "0.5% - 3.7% of all-to-all (median 1%), ~100x fewer rules");

    println!();
    println!("(c) number of instances:");
    let mut t = Table::new(&["scheme", "median", "max", "vs all-to-all (median)"]);
    let a2a_med = a2a_instances.median().unwrap_or(1.0);
    for (name, s) in [
        ("all-to-all", &mut a2a_instances),
        ("YODA-no-limit", &mut nolimit.instances),
        ("YODA-limit", &mut limit.instances),
    ] {
        let med = s.median().unwrap_or(0.0);
        t.row(&[
            name.to_string(),
            f2(med),
            f2(s.max().unwrap_or(0.0)),
            format!("+{}", pct(med / a2a_med - 1.0)),
        ]);
    }
    t.print();
    print_kv(
        "paper",
        "no-limit needs 4.6-73% (avg 27%) more than all-to-all; limit adds ~1.3% (median) over no-limit",
    );

    println!();
    println!("(d) fraction of instances transiently overloaded during update:");
    let mut t = Table::new(&["scheme", "median", "max"]);
    t.row(&[
        "YODA-no-limit".to_string(),
        pct(nolimit.overload.median().unwrap_or(0.0)),
        pct(nolimit.overload.max().unwrap_or(0.0)),
    ]);
    t.row(&[
        "YODA-limit".to_string(),
        pct(limit.overload.median().unwrap_or(0.0)),
        pct(limit.overload.max().unwrap_or(0.0)),
    ]);
    t.print();
    print_kv("paper", "no-limit 0-20.4% (median 5.3%); limit ~0 (only already-overloaded)");

    println!();
    println!("(e) fraction of connections migrated per update:");
    let mut t = Table::new(&["scheme", "median", "max"]);
    t.row(&[
        "YODA-no-limit".to_string(),
        pct(nolimit.migrated.median().unwrap_or(0.0)),
        pct(nolimit.migrated.max().unwrap_or(0.0)),
    ]);
    t.row(&[
        "YODA-limit".to_string(),
        pct(limit.migrated.median().unwrap_or(0.0)),
        pct(limit.migrated.max().unwrap_or(0.0)),
    ]);
    t.print();
    print_kv("paper", "no-limit 2.7-95% (median 44.9%); limit 0-29.8% (median 8.3%)");
    print_kv("max effective delta after relaxation", pct(limit.effective_delta_max));

    println!();
    println!("assignment solve time per round (this solver; paper/CPLEX: 1.5-21.5s, median 3.92s):");
    let mut t = Table::new(&["scheme", "median (ms)", "max (ms)"]);
    t.row(&[
        "YODA-no-limit".to_string(),
        f2(nolimit.solve_ms.median().unwrap_or(0.0)),
        f2(nolimit.solve_ms.max().unwrap_or(0.0)),
    ]);
    t.row(&[
        "YODA-limit".to_string(),
        f2(limit.solve_ms.median().unwrap_or(0.0)),
        f2(limit.solve_ms.max().unwrap_or(0.0)),
    ]);
    t.print();
}
