//! Criterion microbenchmarks for the hot paths of the Yoda data plane and
//! the assignment solvers.
//!
//! * `rule_lookup/*` — the Figure 6 linear rule scan at several table
//!   sizes (criterion-grade statistics for the same quantity the
//!   `fig6_rule_latency` binary reports).
//! * `flow_codec` — encode/decode of the TCPStore flow-state records
//!   (runs on every connection setup).
//! * `seq_translate` — the per-packet tunneling-phase header rewrite.
//! * `hash_ring` — K-replica selection in the TCPStore client.
//! * `assign/*` — greedy assignment at trace scale and the exact B&B on a
//!   small instance.
//! * `tcp_transfer` — a full 100 KB in-memory socket-to-socket transfer.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yoda_assign::{solve_greedy, AssignInput, GreedyConfig, VipSpec};
use yoda_core::flowstate::FlowRecord;
use yoda_core::rules::{Rule, RuleTable, SelectCtx};
use yoda_http::HttpRequest;
use yoda_netsim::{Addr, Endpoint, SimTime};
use yoda_tcp::{SeqNum, Segment, TcpConfig, TcpSocket};

fn rule_table(n: usize) -> RuleTable {
    let rules = (0..n)
        .map(|i| {
            let backend = format!("10.1.{}.{}:80", (i / 250) % 250, i % 250 + 1);
            Rule::parse(&format!(
                "name=r{i} priority=1 match url=/obj{i}/* action=split {backend}=1"
            ))
            .expect("valid rule")
        })
        .collect();
    RuleTable::from_rules(rules)
}

fn bench_rule_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_lookup");
    for &n in &[1_000usize, 10_000] {
        let mut table = rule_table(n);
        let ctx = SelectCtx::default();
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_function(format!("{n}_rules"), |b| {
            b.iter(|| {
                let obj = rng.gen_range(0..n);
                let req = HttpRequest::get(format!("/obj{obj}/x.jpg"));
                black_box(table.select(&req, &ctx, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_flow_codec(c: &mut Criterion) {
    let record = FlowRecord {
        client: Endpoint::new(Addr::new(172, 16, 0, 1), 40000),
        vip: Endpoint::new(Addr::new(100, 0, 0, 1), 80),
        backend: Endpoint::new(Addr::new(10, 1, 0, 3), 80),
        client_isn: SeqNum::new(0xDEADBEEF),
        server_isn: SeqNum::new(0x12345678),
    };
    c.bench_function("flow_codec_roundtrip", |b| {
        b.iter(|| {
            let enc = black_box(&record).encode();
            black_box(FlowRecord::decode(&enc))
        })
    });
}

fn bench_seq_translate(c: &mut Criterion) {
    // The per-packet work of the tunneling phase: decode header fields,
    // apply the Y−S offset, re-encode.
    let seg = Segment {
        src_port: 80,
        dst_port: 40000,
        seq: SeqNum::new(1_000_000),
        ack: SeqNum::new(2_000_000),
        flags: yoda_tcp::Flags::ACK,
        window: 65535,
        payload: bytes::Bytes::from(vec![0u8; 1460]),
    };
    let delta = 0x55AA55AAu32;
    c.bench_function("seq_translate_packet", |b| {
        b.iter(|| {
            let mut out = seg.clone();
            out.seq = SeqNum::new(out.seq.raw().wrapping_add(delta));
            out.src_port = 80;
            out.dst_port = 40000;
            black_box(out.encode())
        })
    });
}

fn bench_hash_ring(c: &mut Criterion) {
    let servers: Vec<Addr> = (1..=10).map(|i| Addr::new(10, 0, 1, i)).collect();
    let ring = yoda_tcpstore::HashRing::new(&servers, 64);
    let mut i = 0u64;
    c.bench_function("hash_ring_2_replicas", |b| {
        b.iter(|| {
            i += 1;
            let key = i.to_be_bytes();
            black_box(ring.replicas(&key, 2))
        })
    });
}

fn bench_assign(c: &mut Criterion) {
    let vips: Vec<VipSpec> = (0..110)
        .map(|i| VipSpec {
            traffic: 50.0 + (i % 23) as f64 * 400.0,
            rules: 50 + (i % 9) as u64 * 150,
            replicas: 1 + i % 4,
            oversub: 0.25,
            connections: 100.0,
        })
        .collect();
    let input = AssignInput {
        vips,
        max_instances: 256,
        traffic_capacity: 12_000.0,
        rule_capacity: 2_000,
        migration_limit: None,
        previous: None,
    };
    c.bench_function("assign_greedy_110_vips", |b| {
        b.iter_batched(
            || input.clone(),
            |input| black_box(solve_greedy(&input, &GreedyConfig::default())),
            BatchSize::SmallInput,
        )
    });
    let small = AssignInput {
        vips: (0..4)
            .map(|i| VipSpec {
                traffic: 40.0 + i as f64 * 10.0,
                rules: 100,
                replicas: 1,
                oversub: 0.0,
                connections: 10.0,
            })
            .collect(),
        max_instances: 4,
        traffic_capacity: 100.0,
        rule_capacity: 2_000,
        migration_limit: None,
        previous: None,
    };
    c.bench_function("assign_exact_4x4", |b| {
        b.iter_batched(
            || small.clone(),
            |input| black_box(yoda_assign::solve_exact(&input, 200)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_tcp_transfer(c: &mut Criterion) {
    c.bench_function("tcp_transfer_100kb", |b| {
        b.iter(|| {
            let cfg = TcpConfig::default();
            let a_ep = Endpoint::new(Addr::new(10, 0, 0, 1), 1000);
            let b_ep = Endpoint::new(Addr::new(10, 0, 0, 2), 80);
            let t = SimTime::ZERO;
            let (mut cl, syn) = TcpSocket::connect(cfg, a_ep, b_ep, SeqNum::new(1), t);
            let (mut sv, synack) =
                TcpSocket::accept(cfg, b_ep, a_ep, &syn, SeqNum::new(2), t).expect("syn");
            let mut to_server = cl.on_segment(&synack, t);
            to_server.extend(cl.send(&[7u8; 100_000], t));
            loop {
                let mut to_client = Vec::new();
                for s in &to_server {
                    to_client.extend(sv.on_segment(s, t));
                }
                if to_client.is_empty() {
                    break;
                }
                to_server.clear();
                for s in &to_client {
                    to_server.extend(cl.on_segment(s, t));
                }
                if to_server.is_empty() {
                    break;
                }
            }
            black_box(sv.take_data())
        })
    });
}

criterion_group!(
    benches,
    bench_rule_lookup,
    bench_flow_codec,
    bench_seq_translate,
    bench_hash_ring,
    bench_assign,
    bench_tcp_transfer
);
criterion_main!(benches);
