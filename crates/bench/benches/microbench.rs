//! Microbenchmarks for the hot paths of the Yoda data plane and the
//! assignment solvers, on a small in-tree harness (no criterion: the
//! build is hermetic, see DESIGN.md "Determinism invariants").
//!
//! * `rule_lookup/*` — the Figure 6 linear rule scan at several table
//!   sizes (same quantity the `fig6_rule_latency` binary reports).
//! * `flow_codec` — encode/decode of the TCPStore flow-state records
//!   (runs on every connection setup).
//! * `seq_translate` — the per-packet tunneling-phase header rewrite.
//! * `hash_ring` — K-replica selection in the TCPStore client.
//! * `assign/*` — greedy assignment at trace scale and the exact B&B on a
//!   small instance.
//! * `tcp_transfer` — a full 100 KB in-memory socket-to-socket transfer.
//!
//! Run with `cargo bench -p yoda-bench`. Wall-clock timing lives only in
//! this binary; simulation code must never read the host clock.

use std::hint::black_box;
use std::time::Instant;

use yoda_assign::{solve_greedy, AssignInput, GreedyConfig, VipSpec};
use yoda_core::flowstate::FlowRecord;
use yoda_core::rules::{Rule, RuleTable, SelectCtx};
use yoda_http::HttpRequest;
use yoda_netsim::rng::Rng;
use yoda_netsim::{Addr, Endpoint, SimTime};
use yoda_tcp::{SeqNum, Segment, TcpConfig, TcpSocket};

/// Times `f` over enough iterations to fill ~200 ms, after a short
/// warmup, and prints mean ns/iter.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warmup and calibration: estimate per-iter cost from 16 iterations.
    let t0 = Instant::now();
    for _ in 0..16 {
        f();
    }
    let per_iter = t0.elapsed().as_nanos().max(1) / 16;
    let iters = (200_000_000 / per_iter).clamp(16, 2_000_000) as u64;
    let t1 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = t1.elapsed().as_nanos();
    println!(
        "{name:32} {:>12.1} ns/iter   ({iters} iters)",
        total as f64 / iters as f64
    );
}

fn rule_table(n: usize) -> RuleTable {
    let rules = (0..n)
        .map(|i| {
            let backend = format!("10.1.{}.{}:80", (i / 250) % 250, i % 250 + 1);
            Rule::parse(&format!(
                "name=r{i} priority=1 match url=/obj{i}/* action=split {backend}=1"
            ))
            .expect("valid rule")
        })
        .collect();
    RuleTable::from_rules(rules)
}

fn bench_rule_lookup() {
    for &n in &[1_000usize, 10_000] {
        let mut table = rule_table(n);
        let ctx = SelectCtx::default();
        let mut rng = Rng::seed_from_u64(1);
        bench(&format!("rule_lookup/{n}_rules"), || {
            let obj = rng.gen_range(0..n);
            let req = HttpRequest::get(format!("/obj{obj}/x.jpg"));
            black_box(table.select(&req, &ctx, &mut rng));
        });
    }
}

fn bench_flow_codec() {
    let record = FlowRecord {
        client: Endpoint::new(Addr::new(172, 16, 0, 1), 40000),
        vip: Endpoint::new(Addr::new(100, 0, 0, 1), 80),
        backend: Endpoint::new(Addr::new(10, 1, 0, 3), 80),
        client_isn: SeqNum::new(0xDEADBEEF),
        server_isn: SeqNum::new(0x12345678),
    };
    bench("flow_codec_roundtrip", || {
        let enc = black_box(&record).encode();
        black_box(FlowRecord::decode(&enc));
    });
}

fn bench_seq_translate() {
    // The per-packet work of the tunneling phase: decode header fields,
    // apply the Y−S offset, re-encode.
    let seg = Segment {
        src_port: 80,
        dst_port: 40000,
        seq: SeqNum::new(1_000_000),
        ack: SeqNum::new(2_000_000),
        flags: yoda_tcp::Flags::ACK,
        window: 65535,
        payload: bytes::Bytes::from(vec![0u8; 1460]),
    };
    let delta = 0x55AA55AAu32;
    bench("seq_translate_packet", || {
        let mut out = seg.clone();
        out.seq = SeqNum::new(out.seq.raw().wrapping_add(delta));
        out.src_port = 80;
        out.dst_port = 40000;
        black_box(out.encode());
    });
}

fn bench_hash_ring() {
    let servers: Vec<Addr> = (1..=10).map(|i| Addr::new(10, 0, 1, i)).collect();
    let ring = yoda_tcpstore::HashRing::new(&servers, 64);
    let mut i = 0u64;
    bench("hash_ring_2_replicas", || {
        i += 1;
        let key = i.to_be_bytes();
        black_box(ring.replicas(&key, 2));
    });
}

fn bench_assign() {
    let vips: Vec<VipSpec> = (0..110)
        .map(|i| VipSpec {
            traffic: 50.0 + (i % 23) as f64 * 400.0,
            rules: 50 + (i % 9) as u64 * 150,
            replicas: 1 + i % 4,
            oversub: 0.25,
            connections: 100.0,
        })
        .collect();
    let input = AssignInput {
        vips,
        max_instances: 256,
        traffic_capacity: 12_000.0,
        rule_capacity: 2_000,
        migration_limit: None,
        previous: None,
    };
    bench("assign_greedy_110_vips", || {
        black_box(solve_greedy(&input.clone(), &GreedyConfig::default()));
    });
    let small = AssignInput {
        vips: (0..4)
            .map(|i| VipSpec {
                traffic: 40.0 + i as f64 * 10.0,
                rules: 100,
                replicas: 1,
                oversub: 0.0,
                connections: 10.0,
            })
            .collect(),
        max_instances: 4,
        traffic_capacity: 100.0,
        rule_capacity: 2_000,
        migration_limit: None,
        previous: None,
    };
    bench("assign_exact_4x4", || {
        black_box(yoda_assign::solve_exact(&small.clone(), 200));
    });
}

fn bench_tcp_transfer() {
    bench("tcp_transfer_100kb", || {
        let cfg = TcpConfig::default();
        let a_ep = Endpoint::new(Addr::new(10, 0, 0, 1), 1000);
        let b_ep = Endpoint::new(Addr::new(10, 0, 0, 2), 80);
        let t = SimTime::ZERO;
        let (mut cl, syn) = TcpSocket::connect(cfg, a_ep, b_ep, SeqNum::new(1), t);
        let (mut sv, synack) =
            TcpSocket::accept(cfg, b_ep, a_ep, &syn, SeqNum::new(2), t).expect("syn");
        let mut to_server = cl.on_segment(&synack, t);
        to_server.extend(cl.send(&[7u8; 100_000], t));
        loop {
            let mut to_client = Vec::new();
            for s in &to_server {
                to_client.extend(sv.on_segment(s, t));
            }
            if to_client.is_empty() {
                break;
            }
            to_server.clear();
            for s in &to_client {
                to_server.extend(cl.on_segment(s, t));
            }
            if to_server.is_empty() {
                break;
            }
        }
        black_box(sv.take_data());
    });
}

fn main() {
    bench_rule_lookup();
    bench_flow_codec();
    bench_seq_translate();
    bench_hash_ring();
    bench_assign();
    bench_tcp_transfer();
}
