//! Migration-aware greedy assignment with local search.
//!
//! The workhorse solver for trace-scale inputs (100+ VIPs, 144 rounds a
//! day). Strategy:
//!
//! 1. Sort VIPs by per-replica load, heaviest first (first-fit-decreasing,
//!    the classic bin-packing heuristic).
//! 2. For each VIP, keep as many of its *previous* instances as remain
//!    feasible (minimizing Eq. 6–7 migration), then fill the remaining
//!    replicas with the least-loaded feasible open instances; open a new
//!    instance only when none fits.
//! 3. Local search: repeatedly try to drain the least-loaded instance by
//!    re-homing its VIP replicas onto other open instances.
//! 4. If the migration budget δ is exceeded, retry with stronger
//!    stickiness; if still infeasible, relax δ in +10% steps — exactly the
//!    paper's fallback ("we increased the limit by increments of 10%",
//!    §8.2).

use crate::model::{AssignError, AssignInput, Assignment, VipSpec};

/// Greedy solver knobs.
#[derive(Debug, Clone, Copy)]
pub struct GreedyConfig {
    /// Rounds of drain-one-instance local search.
    pub local_search_rounds: usize,
    /// δ relaxation step when the migration budget is infeasible.
    pub delta_step: f64,
    /// Maximum δ relaxations before giving up.
    pub max_delta_steps: usize,
    /// Perturbs instance ordering when no migration limit is set,
    /// emulating an unconstrained optimizer's solution churn between
    /// rounds (the paper's YODA-no-limit migrates a median 44.9% of
    /// connections precisely because nothing anchors the solution).
    pub shuffle_seed: Option<u64>,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            local_search_rounds: 200,
            delta_step: 0.10,
            max_delta_steps: 10,
            shuffle_seed: None,
        }
    }
}

/// Result metadata alongside the assignment.
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// The assignment produced.
    pub assignment: Assignment,
    /// The δ actually used (≥ the requested δ when relaxation was needed).
    pub effective_delta: Option<f64>,
    /// Optimality gap vs. the combinatorial lower bound:
    /// `(used − LB) / LB`.
    pub gap: f64,
}

struct Fleet<'a> {
    input: &'a AssignInput,
    load: Vec<f64>,
    rules: Vec<u64>,
    /// Fixed transient load contributed by *old* VIPs of each instance.
    old_load: Vec<f64>,
    /// New-assignment load on each instance from VIPs not previously there
    /// (the variable part of the Eq. 4–5 transient sum).
    new_only: Vec<f64>,
    open: Vec<bool>,
}

impl<'a> Fleet<'a> {
    fn new(input: &'a AssignInput) -> Self {
        let n = input.max_instances;
        let mut old_load = vec![0.0; n];
        if let Some(prev) = &input.previous {
            for (v, spec) in input.vips.iter().enumerate() {
                if let Some(p) = prev.placement.get(v) {
                    for &y in p {
                        if y < n {
                            old_load[y] += spec.load_per_replica();
                        }
                    }
                }
            }
        }
        Fleet {
            input,
            load: vec![0.0; n],
            rules: vec![0; n],
            old_load,
            new_only: vec![0.0; n],
            open: vec![false; n],
        }
    }

    /// Whether `spec` fits on instance `y`, honouring Eq. 1–2 and (when a
    /// previous assignment exists and a limit is set) Eq. 4–5 transient
    /// capacity.
    fn fits(&self, spec: &VipSpec, v: usize, y: usize) -> bool {
        let l = spec.load_per_replica();
        if self.load[y] + l > self.input.traffic_capacity * (1.0 + 1e-12) {
            return false;
        }
        if self.rules[y] + spec.rules > self.input.rule_capacity {
            return false;
        }
        if self.input.migration_limit.is_some() {
            if let Some(prev) = &self.input.previous {
                // Transient load: old VIPs still hitting y + new VIPs on y.
                // A VIP in both old and new contributes once.
                let already_old = prev.assigned(v, y);
                let extra = if already_old { 0.0 } else { l };
                let transient = self.old_load[y] + self.new_only_load(y) + extra;
                // Tolerate instances that were already overloaded (paper
                // §8.2 observes these).
                if transient > self.input.traffic_capacity * (1.0 + 1e-12)
                    && self.old_load[y] <= self.input.traffic_capacity * (1.0 + 1e-12)
                {
                    return false;
                }
            }
        }
        true
    }

    /// New-assignment load on `y` from VIPs *not* previously on `y`.
    fn new_only_load(&self, y: usize) -> f64 {
        // Tracked incrementally in `new_only`; see place().
        self.new_only[y]
    }

    fn place(&mut self, spec: &VipSpec, v: usize, y: usize) {
        self.load[y] += spec.load_per_replica();
        self.rules[y] += spec.rules;
        self.open[y] = true;
        let was_old = self
            .input
            .previous
            .as_ref()
            .map(|p| p.assigned(v, y))
            .unwrap_or(false);
        if !was_old {
            self.new_only[y] += spec.load_per_replica();
        }
    }

}

/// Solves with the greedy + local-search strategy.
///
/// Honours all Figure 7 constraints; relaxes δ in `delta_step` increments
/// when the migration budget alone makes the input infeasible.
pub fn solve_greedy(input: &AssignInput, cfg: &GreedyConfig) -> Result<GreedyOutcome, AssignError> {
    let mut delta = input.migration_limit;
    for step in 0..=cfg.max_delta_steps {
        let relaxed = AssignInput {
            migration_limit: delta,
            ..input.clone()
        };
        match attempt(&relaxed, cfg) {
            Ok(assignment) => {
                let lb = input.lower_bound();
                let used = assignment.num_instances();
                return Ok(GreedyOutcome {
                    assignment,
                    effective_delta: delta,
                    gap: (used as f64 - lb as f64) / lb as f64,
                });
            }
            Err(AssignError::MigrationBudget { .. }) | Err(AssignError::Infeasible)
                if delta.is_some() && step < cfg.max_delta_steps =>
            {
                delta = delta.map(|d| d + cfg.delta_step);
            }
            Err(e) => return Err(e),
        }
    }
    Err(AssignError::Infeasible)
}

fn attempt(input: &AssignInput, cfg: &GreedyConfig) -> Result<Assignment, AssignError> {
    let mut fleet = Fleet::new(input);
    // Heaviest-first order.
    let mut order: Vec<usize> = (0..input.vips.len()).collect();
    order.sort_by(|&a, &b| {
        let la = input.vips[a].load_per_replica();
        let lb = input.vips[b].load_per_replica();
        lb.partial_cmp(&la).expect("finite loads")
    });
    let mut placement = vec![Vec::new(); input.vips.len()];
    for &v in &order {
        let spec = &input.vips[v];
        let mut chosen: Vec<usize> = Vec::with_capacity(spec.replicas);
        // 1. Stickiness: keep previous instances that still fit. Always
        //    on under a migration budget; in shuffled (no-limit) mode a
        //    seed-dependent half of the VIPs is re-placed from scratch,
        //    emulating an unconstrained optimizer's partial solution
        //    churn between rounds.
        let sticky = match (input.migration_limit.is_some(), cfg.shuffle_seed) {
            (true, _) => true,
            (false, Some(seed)) => yoda_hash(seed ^ (v as u64).wrapping_mul(0xA5A5)).is_multiple_of(2),
            (false, None) => true,
        };
        if let (Some(prev), true) = (&input.previous, sticky) {
            if let Some(old) = prev.placement.get(v) {
                for &y in old {
                    if chosen.len() >= spec.replicas {
                        break;
                    }
                    if y < input.max_instances && !chosen.contains(&y) && fleet.fits(spec, v, y) {
                        fleet.place(spec, v, y);
                        chosen.push(y);
                    }
                }
            }
        }
        // 2. Fill remaining replicas: least-loaded open instance first,
        //    then the first closed instance.
        while chosen.len() < spec.replicas {
            let candidate = best_candidate(&fleet, spec, v, &chosen, input, cfg);
            match candidate {
                Some(y) => {
                    fleet.place(spec, v, y);
                    chosen.push(y);
                }
                None => return Err(AssignError::Infeasible),
            }
        }
        chosen.sort_unstable();
        placement[v] = chosen;
    }
    let mut assignment = Assignment::new(placement);
    local_search(input, &mut assignment, cfg);
    input.validate(&assignment)?;
    Ok(assignment)
}

/// Least-loaded feasible open instance, else the lowest-index closed one.
/// Under a shuffle seed (no-limit mode) open instances are scanned
/// first-fit in a seed-determined order instead.
fn best_candidate(
    fleet: &Fleet<'_>,
    spec: &VipSpec,
    v: usize,
    exclude: &[usize],
    input: &AssignInput,
    cfg: &GreedyConfig,
) -> Option<usize> {
    if let Some(seed) = cfg.shuffle_seed {
        // First fit over a seed-shuffled order of the open instances.
        let mut order: Vec<usize> = (0..input.max_instances).filter(|&y| fleet.open[y]).collect();
        order.sort_by_key(|&y| {
            yoda_hash(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (y as u64).wrapping_mul(0xD6E8))
        });
        for y in order {
            if !exclude.contains(&y) && fleet.fits(spec, v, y) {
                return Some(y);
            }
        }
    } else {
        let mut best: Option<(f64, usize)> = None;
        for y in 0..input.max_instances {
            if exclude.contains(&y) || !fleet.open[y] || !fleet.fits(spec, v, y) {
                continue;
            }
            let key = fleet.load[y];
            if best.map(|(l, _)| key < l).unwrap_or(true) {
                best = Some((key, y));
            }
        }
        if let Some((_, y)) = best {
            return Some(y);
        }
    }
    (0..input.max_instances).find(|&y| !fleet.open[y] && !exclude.contains(&y) && fleet.fits(spec, v, y))
}

/// splitmix64 finalizer for deterministic shuffling.
fn yoda_hash(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Tries to empty lightly-loaded instances by re-homing their replicas.
fn local_search(input: &AssignInput, assignment: &mut Assignment, cfg: &GreedyConfig) {
    for _ in 0..cfg.local_search_rounds {
        let used = assignment.instances_used();
        if used.len() <= 1 {
            return;
        }
        let loads = assignment.load_per_instance(&input.vips);
        // Candidate to drain: least-loaded used instance.
        let &victim = used
            .iter()
            .min_by(|&&a, &&b| {
                loads[a]
                    .partial_cmp(&loads[b])
                    .expect("finite loads")
            })
            .expect("non-empty");
        // Try to move every replica off the victim.
        let mut trial = assignment.clone();
        let mut ok = true;
        for v in 0..input.vips.len() {
            if !trial.assigned(v, victim) {
                continue;
            }
            // Find an alternative instance for this replica.
            let mut moved = false;
            for &y in &used {
                if y == victim || trial.assigned(v, y) {
                    continue;
                }
                let mut candidate = trial.clone();
                let pos = candidate.placement[v]
                    .iter()
                    .position(|&i| i == victim)
                    .expect("assigned");
                candidate.placement[v][pos] = y;
                candidate.placement[v].sort_unstable();
                if input.validate(&candidate).is_ok() {
                    trial = candidate;
                    moved = true;
                    break;
                }
            }
            if !moved {
                ok = false;
                break;
            }
        }
        if ok && trial.num_instances() < assignment.num_instances() {
            *assignment = trial;
        } else {
            return; // No further improvement.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vip(traffic: f64, rules: u64, replicas: usize) -> VipSpec {
        VipSpec {
            traffic,
            rules,
            replicas,
            oversub: 0.0,
            connections: traffic,
        }
    }

    fn base_input(vips: Vec<VipSpec>) -> AssignInput {
        AssignInput {
            vips,
            max_instances: 50,
            traffic_capacity: 100.0,
            rule_capacity: 2000,
            migration_limit: None,
            previous: None,
        }
    }

    #[test]
    fn packs_within_constraints() {
        let input = base_input(vec![
            vip(70.0, 500, 1),
            vip(60.0, 500, 1),
            vip(40.0, 500, 1),
            vip(30.0, 500, 1),
        ]);
        let out = solve_greedy(&input, &GreedyConfig::default()).unwrap();
        assert!(input.validate(&out.assignment).is_ok());
        // 200 total load / 100 per instance = 2 needed.
        assert_eq!(out.assignment.num_instances(), 2);
        assert!(out.gap < 1e-9);
    }

    #[test]
    fn rule_capacity_forces_spread() {
        let input = base_input(vec![
            vip(1.0, 1500, 1),
            vip(1.0, 1500, 1),
            vip(1.0, 1500, 1),
        ]);
        let out = solve_greedy(&input, &GreedyConfig::default()).unwrap();
        assert_eq!(out.assignment.num_instances(), 3, "rules don't fit together");
    }

    #[test]
    fn replicas_spread_across_instances() {
        let input = base_input(vec![vip(90.0, 100, 3)]);
        let out = solve_greedy(&input, &GreedyConfig::default()).unwrap();
        assert_eq!(out.assignment.placement[0].len(), 3);
        assert_eq!(out.assignment.num_instances(), 3);
    }

    #[test]
    fn sticks_to_previous_assignment() {
        let vips = vec![vip(50.0, 100, 1), vip(50.0, 100, 1)];
        let prev = Assignment::new(vec![vec![5], vec![7]]);
        let input = AssignInput {
            previous: Some(prev.clone()),
            migration_limit: Some(0.1),
            ..base_input(vips)
        };
        let out = solve_greedy(&input, &GreedyConfig::default()).unwrap();
        // Zero migration achievable: must keep both VIPs in place.
        assert_eq!(
            prev.migrated_fraction(&out.assignment, &input.vips),
            0.0,
            "placement: {:?}",
            out.assignment.placement
        );
    }

    #[test]
    fn delta_relaxation_when_forced_to_migrate() {
        // Previous instance can no longer hold the VIP (rules grew), so
        // migration is forced; δ=0 must relax upward (paper's +10% steps).
        let vips = vec![vip(50.0, 1900, 1), vip(50.0, 1900, 1)];
        let prev = Assignment::new(vec![vec![0], vec![0]]);
        let input = AssignInput {
            previous: Some(prev),
            migration_limit: Some(0.0),
            ..base_input(vips)
        };
        let out = solve_greedy(&input, &GreedyConfig::default()).unwrap();
        assert!(input.vips.len() == 2);
        assert!(out.effective_delta.unwrap() > 0.0);
        assert_eq!(out.assignment.num_instances(), 2);
    }

    #[test]
    fn infeasible_when_pool_too_small() {
        let input = AssignInput {
            max_instances: 1,
            ..base_input(vec![vip(90.0, 100, 1), vip(90.0, 100, 1)])
        };
        assert!(matches!(
            solve_greedy(&input, &GreedyConfig::default()),
            Err(AssignError::Infeasible)
        ));
    }

    #[test]
    fn oversub_requires_headroom() {
        // n=2, o=0.5 → tolerate 1 failure → each replica carries full 80.
        let input = base_input(vec![VipSpec {
            traffic: 80.0,
            rules: 10,
            replicas: 2,
            oversub: 0.5,
            connections: 80.0,
        }]);
        let out = solve_greedy(&input, &GreedyConfig::default()).unwrap();
        let loads = out.assignment.load_per_instance(&input.vips);
        for l in loads {
            assert!(l == 0.0 || (l - 80.0).abs() < 1e-9);
        }
    }

    #[test]
    fn scales_to_trace_size() {
        // 120 VIPs with assorted requirements solve quickly and validate.
        let vips: Vec<VipSpec> = (0..120)
            .map(|i| vip(5.0 + (i % 17) as f64 * 3.0, 50 + (i % 9) as u64 * 100, 1 + i % 3))
            .collect();
        let input = AssignInput {
            max_instances: 200,
            ..base_input(vips)
        };
        let out = solve_greedy(&input, &GreedyConfig::default()).unwrap();
        assert!(input.validate(&out.assignment).is_ok());
        assert!(out.gap < 0.5, "gap {}", out.gap);
    }
}
