//! Problem definition and constraint validation (paper Table 2, Figure 7).

use std::fmt;

/// One VIP's requirements (Table 2 notation in field docs).
#[derive(Debug, Clone, PartialEq)]
pub struct VipSpec {
    /// `t_v`: total traffic for this VIP (requests/sec or any consistent
    /// load unit).
    pub traffic: f64,
    /// `r_v`: number of L7 rules for this VIP.
    pub rules: u64,
    /// `n_v`: number of instances (replicas) this VIP must be assigned to.
    pub replicas: usize,
    /// `o_v`: over-subscription ratio; `f_v = floor(n_v · o_v)` instance
    /// failures must be tolerable.
    pub oversub: f64,
    /// Current connection count for this VIP (drives the Eq. 6–7
    /// migration budget).
    pub connections: f64,
}

impl VipSpec {
    /// `f_v = floor(n_v · o_v)`, clamped so at least one replica remains.
    pub fn failures_tolerated(&self) -> usize {
        let f = (self.replicas as f64 * self.oversub).floor() as usize;
        f.min(self.replicas.saturating_sub(1))
    }

    /// Traffic carried by each replica after `f_v` failures:
    /// `t_v / (n_v − f_v)` (Eq. 1 numerator).
    pub fn load_per_replica(&self) -> f64 {
        self.traffic / (self.replicas - self.failures_tolerated()) as f64
    }

    /// Traffic each replica actually carries with all replicas healthy:
    /// `t_v / n_v`. Eq. 1 constrains the failure-adjusted load; what an
    /// instance *observes* (and what Figure 16(d) measures) is this.
    pub fn actual_load_per_replica(&self) -> f64 {
        self.traffic / self.replicas as f64
    }
}

/// The assignment problem input.
#[derive(Debug, Clone)]
pub struct AssignInput {
    /// The VIPs to place.
    pub vips: Vec<VipSpec>,
    /// `|Y|`: instances available (upper bound on the fleet).
    pub max_instances: usize,
    /// `T_y`: per-instance traffic capacity.
    pub traffic_capacity: f64,
    /// `R_y`: per-instance rule capacity (the 5 ms latency target of §8
    /// translates to 2K rules via Figure 6).
    pub rule_capacity: u64,
    /// δ: max fraction of total connections allowed to migrate in one
    /// update (Eq. 6–7); `None` disables the migration and transient
    /// constraints (the paper's YODA-no-limit variant).
    pub migration_limit: Option<f64>,
    /// The previous assignment (for Eq. 4–7); `None` for a cold start.
    pub previous: Option<Assignment>,
}

/// A VIP→instance assignment: `placement[v]` lists the instance indexes
/// serving VIP `v`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Assignment {
    /// Per-VIP instance lists, sorted ascending.
    pub placement: Vec<Vec<usize>>,
}

impl Assignment {
    /// Builds from raw lists, normalizing order.
    pub fn new(mut placement: Vec<Vec<usize>>) -> Self {
        for p in &mut placement {
            p.sort_unstable();
            p.dedup();
        }
        Assignment { placement }
    }

    /// Whether VIP `v` is on instance `y`.
    pub fn assigned(&self, v: usize, y: usize) -> bool {
        self.placement
            .get(v)
            .map(|p| p.binary_search(&y).is_ok())
            .unwrap_or(false)
    }

    /// The set of instances used by any VIP.
    pub fn instances_used(&self) -> Vec<usize> {
        let mut used: Vec<usize> = self.placement.iter().flatten().copied().collect();
        used.sort_unstable();
        used.dedup();
        used
    }

    /// The objective value: number of instances used.
    pub fn num_instances(&self) -> usize {
        self.instances_used().len()
    }

    /// Per-instance rule counts under this assignment.
    pub fn rules_per_instance(&self, vips: &[VipSpec]) -> Vec<u64> {
        let max = self
            .placement
            .iter()
            .flatten()
            .copied()
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        let mut rules = vec![0u64; max];
        for (v, inst) in self.placement.iter().enumerate() {
            for &y in inst {
                rules[y] += vips[v].rules;
            }
        }
        rules
    }

    /// Per-instance failure-adjusted load (Eq. 1 left side).
    pub fn load_per_instance(&self, vips: &[VipSpec]) -> Vec<f64> {
        let max = self
            .placement
            .iter()
            .flatten()
            .copied()
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        let mut load = vec![0.0; max];
        for (v, inst) in self.placement.iter().enumerate() {
            for &y in inst {
                load[y] += vips[v].load_per_replica();
            }
        }
        load
    }

    /// Fraction of connections migrated going from `self` to `next`
    /// (Eq. 6–7): a VIP's per-instance share of connections migrates when
    /// that instance is removed from the VIP.
    pub fn migrated_fraction(&self, next: &Assignment, vips: &[VipSpec]) -> f64 {
        let total: f64 = vips.iter().map(|v| v.connections).sum();
        if total == 0.0 {
            return 0.0;
        }
        let mut migrated = 0.0;
        for (v, spec) in vips.iter().enumerate() {
            let old = self.placement.get(v).cloned().unwrap_or_default();
            if old.is_empty() {
                continue;
            }
            let share = spec.connections / old.len() as f64;
            for y in old {
                if !next.assigned(v, y) {
                    migrated += share;
                }
            }
        }
        migrated / total
    }
}

/// Statistics about an old→new transition (Figure 16 d/e).
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionStats {
    /// Fraction of instances whose transient (max-of-old-and-new) load
    /// exceeds capacity.
    pub overloaded_fraction: f64,
    /// Number of instances transiently overloaded.
    pub overloaded_instances: usize,
    /// Fraction of connections that migrate.
    pub migrated_fraction: f64,
}

/// Computes transition statistics between two assignments.
pub fn transition_stats(
    old: &Assignment,
    new: &Assignment,
    vips: &[VipSpec],
    traffic_capacity: f64,
) -> TransitionStats {
    let old_load = old.load_per_instance(vips);
    let new_load = new.load_per_instance(vips);
    let n = old_load.len().max(new_load.len());
    let mut overloaded = 0usize;
    let mut active = 0usize;
    for y in 0..n {
        let o = old_load.get(y).copied().unwrap_or(0.0);
        let nw = new_load.get(y).copied().unwrap_or(0.0);
        // Transient load: a mux pool mid-update can send this instance its
        // old VIPs' traffic and its new VIPs' traffic. Measured with the
        // *actual* per-replica shares (t_v/n_v) — the failure-adjusted
        // t_v/(n_v−f_v) is a provisioning constraint, not carried load.
        let transient = transient_actual_load(old, new, vips, y);
        if o > 0.0 || nw > 0.0 {
            active += 1;
            if transient > traffic_capacity * (1.0 + 1e-9) {
                overloaded += 1;
            }
        }
    }
    TransitionStats {
        overloaded_fraction: if active == 0 {
            0.0
        } else {
            overloaded as f64 / active as f64
        },
        overloaded_instances: overloaded,
        migrated_fraction: old.migrated_fraction(new, vips),
    }
}

/// Transient load on instance `y` in Eq. 4–5's failure-adjusted units:
/// Σ_v max(old share, new share).
pub fn transient_load(old: &Assignment, new: &Assignment, vips: &[VipSpec], y: usize) -> f64 {
    let mut load = 0.0;
    for (v, spec) in vips.iter().enumerate() {
        let was = old.assigned(v, y);
        let is = new.assigned(v, y);
        if was || is {
            load += spec.load_per_replica();
        }
    }
    load
}

/// Transient load on instance `y` in *actually carried* traffic units
/// (t_v/n_v per replica) — what Figure 16(d)'s overload measurement uses.
pub fn transient_actual_load(
    old: &Assignment,
    new: &Assignment,
    vips: &[VipSpec],
    y: usize,
) -> f64 {
    let mut load = 0.0;
    for (v, spec) in vips.iter().enumerate() {
        if old.assigned(v, y) || new.assigned(v, y) {
            load += spec.actual_load_per_replica();
        }
    }
    load
}

/// Why an assignment is invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignError {
    /// A VIP has the wrong number of replicas (Eq. 3).
    ReplicaCount {
        /// Offending VIP index.
        vip: usize,
        /// Replicas found.
        got: usize,
        /// Replicas required.
        want: usize,
    },
    /// An instance exceeds traffic capacity (Eq. 1).
    TrafficCapacity {
        /// Offending instance.
        instance: usize,
        /// Failure-adjusted load.
        load: f64,
    },
    /// An instance exceeds rule capacity (Eq. 2).
    RuleCapacity {
        /// Offending instance.
        instance: usize,
        /// Rules placed.
        rules: u64,
    },
    /// An instance exceeds capacity during the transition (Eq. 4–5).
    TransientOverload {
        /// Offending instance.
        instance: usize,
        /// Transient load.
        load: f64,
    },
    /// Too many connections migrate (Eq. 6–7).
    MigrationBudget {
        /// Migrated fraction.
        fraction: f64,
        /// Allowed fraction δ.
        limit: f64,
    },
    /// The instance pool is exhausted.
    Infeasible,
}

impl fmt::Display for AssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignError::ReplicaCount { vip, got, want } => {
                write!(f, "vip {vip}: {got} replicas, want {want}")
            }
            AssignError::TrafficCapacity { instance, load } => {
                write!(f, "instance {instance}: load {load:.1} over capacity")
            }
            AssignError::RuleCapacity { instance, rules } => {
                write!(f, "instance {instance}: {rules} rules over capacity")
            }
            AssignError::TransientOverload { instance, load } => {
                write!(f, "instance {instance}: transient load {load:.1} over capacity")
            }
            AssignError::MigrationBudget { fraction, limit } => {
                write!(f, "migrated {fraction:.3} of connections > δ={limit:.3}")
            }
            AssignError::Infeasible => write!(f, "no feasible assignment"),
        }
    }
}

impl std::error::Error for AssignError {}

impl AssignInput {
    /// Validates `assignment` against every constraint of Figure 7.
    pub fn validate(&self, assignment: &Assignment) -> Result<(), AssignError> {
        // Eq. 3: replica counts.
        for (v, spec) in self.vips.iter().enumerate() {
            let got = assignment.placement.get(v).map(|p| p.len()).unwrap_or(0);
            if got != spec.replicas {
                return Err(AssignError::ReplicaCount {
                    vip: v,
                    got,
                    want: spec.replicas,
                });
            }
        }
        // Eq. 1: traffic capacity with failure headroom.
        for (y, load) in assignment.load_per_instance(&self.vips).iter().enumerate() {
            if *load > self.traffic_capacity * (1.0 + 1e-9) {
                return Err(AssignError::TrafficCapacity { instance: y, load: *load });
            }
        }
        // Eq. 2: rule capacity.
        for (y, rules) in assignment.rules_per_instance(&self.vips).iter().enumerate() {
            if *rules > self.rule_capacity {
                return Err(AssignError::RuleCapacity {
                    instance: y,
                    rules: *rules,
                });
            }
        }
        // Eq. 4–7 only bind when there is a previous assignment and a limit.
        if let (Some(prev), Some(delta)) = (&self.previous, self.migration_limit) {
            let n = self.max_instances;
            for y in 0..n {
                let t = transient_load(prev, assignment, &self.vips, y);
                if t > self.traffic_capacity * (1.0 + 1e-9) {
                    // Instances already overloaded before the round are
                    // tolerated (paper §8.2 observes exactly this case).
                    let old_only: f64 = self
                        .vips
                        .iter()
                        .enumerate()
                        .filter(|(v, _)| prev.assigned(*v, y))
                        .map(|(_, s)| s.load_per_replica())
                        .sum();
                    if old_only <= self.traffic_capacity * (1.0 + 1e-9) {
                        return Err(AssignError::TransientOverload { instance: y, load: t });
                    }
                }
            }
            let fraction = prev.migrated_fraction(assignment, &self.vips);
            if fraction > delta + 1e-9 {
                return Err(AssignError::MigrationBudget {
                    fraction,
                    limit: delta,
                });
            }
        }
        Ok(())
    }

    /// A combinatorial lower bound on the number of instances needed:
    /// max of the traffic bound, the rule bound, and the largest replica
    /// requirement. Used for optimality-gap reporting at trace scale.
    pub fn lower_bound(&self) -> usize {
        let total_load: f64 = self
            .vips
            .iter()
            .map(|v| v.load_per_replica() * v.replicas as f64)
            .sum();
        let traffic_lb = (total_load / self.traffic_capacity).ceil() as usize;
        let total_rules: u64 = self
            .vips
            .iter()
            .map(|v| v.rules * v.replicas as u64)
            .sum();
        let rule_lb = total_rules.div_ceil(self.rule_capacity) as usize;
        let replica_lb = self.vips.iter().map(|v| v.replicas).max().unwrap_or(0);
        traffic_lb.max(rule_lb).max(replica_lb).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vip(traffic: f64, rules: u64, replicas: usize, oversub: f64) -> VipSpec {
        VipSpec {
            traffic,
            rules,
            replicas,
            oversub,
            connections: traffic, // 1 connection per unit traffic
        }
    }

    fn input(vips: Vec<VipSpec>) -> AssignInput {
        AssignInput {
            vips,
            max_instances: 10,
            traffic_capacity: 100.0,
            rule_capacity: 2000,
            migration_limit: None,
            previous: None,
        }
    }

    #[test]
    fn failure_tolerance_math() {
        let v = vip(90.0, 10, 4, 0.5);
        assert_eq!(v.failures_tolerated(), 2);
        assert_eq!(v.load_per_replica(), 45.0);
        // o_v = 0 means no failure headroom.
        let v0 = vip(90.0, 10, 3, 0.0);
        assert_eq!(v0.failures_tolerated(), 0);
        assert_eq!(v0.load_per_replica(), 30.0);
        // f_v can never absorb every replica.
        let v_all = vip(10.0, 1, 2, 1.0);
        assert_eq!(v_all.failures_tolerated(), 1);
    }

    #[test]
    fn validate_accepts_feasible() {
        let inp = input(vec![vip(100.0, 100, 2, 0.0), vip(50.0, 100, 1, 0.0)]);
        // VIP0: 50 load each on instances 0,1; VIP1: 50 on instance 0.
        let a = Assignment::new(vec![vec![0, 1], vec![0]]);
        assert_eq!(inp.validate(&a), Ok(()));
        assert_eq!(a.num_instances(), 2);
    }

    #[test]
    fn validate_rejects_replica_miscount() {
        let inp = input(vec![vip(10.0, 1, 2, 0.0)]);
        let a = Assignment::new(vec![vec![0]]);
        assert!(matches!(
            inp.validate(&a),
            Err(AssignError::ReplicaCount { vip: 0, got: 1, want: 2 })
        ));
    }

    #[test]
    fn validate_rejects_traffic_overload() {
        let inp = input(vec![vip(300.0, 1, 2, 0.0)]);
        let a = Assignment::new(vec![vec![0, 1]]);
        assert!(matches!(
            inp.validate(&a),
            Err(AssignError::TrafficCapacity { .. })
        ));
    }

    #[test]
    fn validate_rejects_rule_overload() {
        let inp = input(vec![vip(1.0, 1500, 1, 0.0), vip(1.0, 1500, 1, 0.0)]);
        let a = Assignment::new(vec![vec![0], vec![0]]);
        assert!(matches!(
            inp.validate(&a),
            Err(AssignError::RuleCapacity { instance: 0, .. })
        ));
    }

    #[test]
    fn oversub_tightens_capacity() {
        // 2 replicas, tolerate 1 failure: each replica must absorb the
        // whole VIP: load 150 > 100 on one instance.
        let inp = input(vec![vip(150.0, 1, 2, 0.5)]);
        let a = Assignment::new(vec![vec![0, 1]]);
        assert!(matches!(
            inp.validate(&a),
            Err(AssignError::TrafficCapacity { .. })
        ));
    }

    #[test]
    fn migration_fraction_counts_removed_instances() {
        let vips = vec![vip(100.0, 1, 2, 0.0), vip(100.0, 1, 1, 0.0)];
        let old = Assignment::new(vec![vec![0, 1], vec![2]]);
        // VIP0 moves replica 1→3 (half its connections), VIP1 stays.
        let new = Assignment::new(vec![vec![0, 3], vec![2]]);
        let frac = old.migrated_fraction(&new, &vips);
        assert!((frac - 0.25).abs() < 1e-9, "{frac}");
    }

    #[test]
    fn migration_budget_enforced() {
        let vips = vec![vip(100.0, 10, 1, 0.0)];
        let old = Assignment::new(vec![vec![0]]);
        let new = Assignment::new(vec![vec![1]]);
        let inp = AssignInput {
            vips,
            max_instances: 4,
            traffic_capacity: 200.0,
            rule_capacity: 2000,
            migration_limit: Some(0.1),
            previous: Some(old),
        };
        assert!(matches!(
            inp.validate(&new),
            Err(AssignError::MigrationBudget { .. })
        ));
    }

    #[test]
    fn transient_overload_detected() {
        // The VIPs swap instances: steady-state load is fine (60 ≤ 100 on
        // each) but mid-update each instance can see old + new = 120.
        let vips = vec![vip(60.0, 10, 1, 0.0), vip(60.0, 10, 1, 0.0)];
        let old = Assignment::new(vec![vec![0], vec![1]]);
        let new = Assignment::new(vec![vec![1], vec![0]]);
        let inp = AssignInput {
            vips: vips.clone(),
            max_instances: 2,
            traffic_capacity: 100.0,
            rule_capacity: 2000,
            migration_limit: Some(1.0),
            previous: Some(old.clone()),
        };
        assert!(matches!(
            inp.validate(&new),
            Err(AssignError::TransientOverload { .. })
        ));
        let stats = transition_stats(&old, &new, &vips, 100.0);
        assert_eq!(stats.overloaded_instances, 2);
        assert!((stats.migrated_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lower_bound_dimensions() {
        // Traffic-bound case: 5 VIPs of 60 load → 300 total → ≥3 instances.
        let inp = input(vec![
            vip(60.0, 1, 1, 0.0),
            vip(60.0, 1, 1, 0.0),
            vip(60.0, 1, 1, 0.0),
            vip(60.0, 1, 1, 0.0),
            vip(60.0, 1, 1, 0.0),
        ]);
        assert_eq!(inp.lower_bound(), 3);
        // Rule-bound case.
        let inp2 = input(vec![vip(1.0, 1900, 1, 0.0), vip(1.0, 1900, 1, 0.0)]);
        assert_eq!(inp2.lower_bound(), 2);
        // Replica-bound case.
        let inp3 = input(vec![vip(1.0, 1, 4, 0.0)]);
        assert_eq!(inp3.lower_bound(), 4);
    }
}
