//! A dense two-phase simplex LP solver.
//!
//! Stands in for the paper's CPLEX: solves the LP relaxation of the
//! Figure 7 ILP (and anything else), feeding bounds to the
//! branch-and-bound solver in [`bnb`](crate::bnb).
//!
//! Standard-form construction: `maximize c·x` subject to mixed
//! `≤ / ≥ / =` constraints and `x ≥ 0`. `≤` rows get slack variables,
//! `≥` rows surplus + artificial, `=` rows artificial; phase 1 drives the
//! artificials to zero (else the program is infeasible), phase 2 optimizes
//! the real objective. Dantzig pricing with a Bland's-rule fallback guards
//! against cycling.

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `≤`
    Le,
    /// `≥`
    Ge,
    /// `=`
    Eq,
}

/// Solver failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// No feasible point.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
    /// The iteration limit was exceeded (numerical trouble).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "infeasible"),
            LpError::Unbounded => write!(f, "unbounded"),
            LpError::IterationLimit => write!(f, "iteration limit"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct LpResult {
    /// Optimal objective value (of the *maximization*).
    pub objective: f64,
    /// Optimal variable values.
    pub x: Vec<f64>,
}

/// A linear program under construction.
///
/// # Examples
///
/// ```
/// use yoda_assign::{LinearProgram};
/// use yoda_assign::simplex::Cmp;
///
/// // maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6
/// let mut lp = LinearProgram::new(2);
/// lp.set_objective(&[3.0, 2.0]);
/// lp.add_constraint(&[1.0, 1.0], Cmp::Le, 4.0);
/// lp.add_constraint(&[1.0, 3.0], Cmp::Le, 6.0);
/// let sol = lp.solve().unwrap();
/// assert!((sol.objective - 12.0).abs() < 1e-6); // x=4, y=0
/// ```
#[derive(Debug, Clone)]
pub struct LinearProgram {
    num_vars: usize,
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, Cmp, f64)>,
}

const EPS: f64 = 1e-9;

impl LinearProgram {
    /// Creates a program over `num_vars` non-negative variables with a
    /// zero objective.
    pub fn new(num_vars: usize) -> Self {
        LinearProgram {
            num_vars,
            objective: vec![0.0; num_vars],
            rows: Vec::new(),
        }
    }

    /// Sets the maximization objective coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `c.len() != num_vars`.
    pub fn set_objective(&mut self, c: &[f64]) {
        assert_eq!(c.len(), self.num_vars, "objective arity");
        self.objective = c.to_vec();
    }

    /// Adds a constraint `coeffs · x (cmp) rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn add_constraint(&mut self, coeffs: &[f64], cmp: Cmp, rhs: f64) {
        assert_eq!(coeffs.len(), self.num_vars, "constraint arity");
        self.rows.push((coeffs.to_vec(), cmp, rhs));
    }

    /// Number of constraints so far.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Solves the program.
    pub fn solve(&self) -> Result<LpResult, LpError> {
        let m = self.rows.len();
        let n = self.num_vars;
        // Normalize rows to non-negative rhs.
        let mut rows = self.rows.clone();
        for (coeffs, cmp, rhs) in &mut rows {
            if *rhs < 0.0 {
                for c in coeffs.iter_mut() {
                    *c = -*c;
                }
                *rhs = -*rhs;
                *cmp = match *cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
        }
        // Column layout: [x (n)] [slack/surplus (s)] [artificial (a)].
        let num_slack = rows
            .iter()
            .filter(|(_, c, _)| matches!(c, Cmp::Le | Cmp::Ge))
            .count();
        let num_art = rows
            .iter()
            .filter(|(_, c, _)| matches!(c, Cmp::Ge | Cmp::Eq))
            .count();
        let total = n + num_slack + num_art;
        // Tableau: m rows × (total + 1 rhs column), plus objective row.
        let mut t = vec![vec![0.0f64; total + 1]; m];
        let mut basis = vec![0usize; m];
        let mut s_idx = n;
        let mut a_idx = n + num_slack;
        let mut artificial_cols = Vec::new();
        for (i, (coeffs, cmp, rhs)) in rows.iter().enumerate() {
            t[i][..n].copy_from_slice(coeffs);
            t[i][total] = *rhs;
            match cmp {
                Cmp::Le => {
                    t[i][s_idx] = 1.0;
                    basis[i] = s_idx;
                    s_idx += 1;
                }
                Cmp::Ge => {
                    t[i][s_idx] = -1.0;
                    s_idx += 1;
                    t[i][a_idx] = 1.0;
                    basis[i] = a_idx;
                    artificial_cols.push(a_idx);
                    a_idx += 1;
                }
                Cmp::Eq => {
                    t[i][a_idx] = 1.0;
                    basis[i] = a_idx;
                    artificial_cols.push(a_idx);
                    a_idx += 1;
                }
            }
        }
        // Phase 1: minimize sum of artificials = maximize -(sum).
        if !artificial_cols.is_empty() {
            let mut obj = vec![0.0; total];
            for &a in &artificial_cols {
                obj[a] = -1.0;
            }
            let val = run_simplex(&mut t, &mut basis, &obj, total)?;
            if val < -1e-6 {
                return Err(LpError::Infeasible);
            }
            // Pivot out any artificial still (degenerately) in the basis.
            for i in 0..m {
                if basis[i] >= n + num_slack {
                    if let Some(col) = (0..n + num_slack).find(|&j| t[i][j].abs() > EPS) {
                        pivot(&mut t, &mut basis, i, col, total);
                    }
                }
            }
        }
        // Phase 2: the real objective, artificial columns forbidden.
        let mut obj = vec![0.0; total];
        obj[..n].copy_from_slice(&self.objective);
        for &a in &artificial_cols {
            for row in t.iter_mut() {
                row[a] = 0.0; // column disabled
            }
        }
        let objective = run_simplex(&mut t, &mut basis, &obj, total)?;
        let mut x = vec![0.0; n];
        for (i, &b) in basis.iter().enumerate() {
            if b < n {
                x[b] = t[i][total];
            }
        }
        Ok(LpResult { objective, x })
    }
}

/// Runs simplex iterations on a tableau already in basic feasible form.
/// Returns the objective value.
fn run_simplex(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    obj: &[f64],
    total: usize,
) -> Result<f64, LpError> {
    let m = t.len();
    let max_iters = 20_000 + 50 * (m + total);
    for iter in 0..max_iters {
        // Reduced costs: c_j - c_B · B^-1 A_j, computed from the tableau.
        let mut entering = None;
        let mut best = EPS;
        for j in 0..total {
            let mut red = obj[j];
            for i in 0..m {
                red -= obj[basis[i]] * t[i][j];
            }
            let use_bland = iter > max_iters / 2;
            if red > EPS {
                if use_bland {
                    entering = Some(j);
                    break;
                }
                if red > best {
                    best = red;
                    entering = Some(j);
                }
            }
        }
        let Some(col) = entering else {
            // Optimal.
            let mut val = 0.0;
            for i in 0..m {
                val += obj[basis[i]] * t[i][total];
            }
            return Ok(val);
        };
        // Ratio test.
        let mut leaving = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if t[i][col] > EPS {
                let ratio = t[i][total] / t[i][col];
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && leaving.map(|l: usize| basis[i] < basis[l]).unwrap_or(false))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let Some(row) = leaving else {
            return Err(LpError::Unbounded);
        };
        pivot(t, basis, row, col, total);
    }
    Err(LpError::IterationLimit)
}

fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, total: usize) {
    let m = t.len();
    let p = t[row][col];
    for v in t[row].iter_mut() {
        *v /= p;
    }
    for i in 0..m {
        if i != row && t[i][col].abs() > EPS {
            let factor = t[i][col];
            let (head, tail) = t.split_at_mut(row.max(i));
            let (pivot_row, target_row) = if i < row {
                (&tail[0], &mut head[i])
            } else {
                (&head[row], &mut tail[0])
            };
            for (tj, pj) in target_row.iter_mut().zip(pivot_row.iter()).take(total + 1) {
                *tj -= factor * pj;
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 5x + 4y; 6x + 4y <= 24; x + 2y <= 6 → x=3, y=1.5, obj=21.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[5.0, 4.0]);
        lp.add_constraint(&[6.0, 4.0], Cmp::Le, 24.0);
        lp.add_constraint(&[1.0, 2.0], Cmp::Le, 6.0);
        let sol = lp.solve().unwrap();
        assert_near(sol.objective, 21.0);
        assert_near(sol.x[0], 3.0);
        assert_near(sol.x[1], 1.5);
    }

    #[test]
    fn equality_constraints() {
        // max x + y; x + y = 5; x <= 3 → obj 5.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.add_constraint(&[1.0, 1.0], Cmp::Eq, 5.0);
        lp.add_constraint(&[1.0, 0.0], Cmp::Le, 3.0);
        let sol = lp.solve().unwrap();
        assert_near(sol.objective, 5.0);
    }

    #[test]
    fn ge_constraints_and_minimization_pattern() {
        // minimize 2x + 3y s.t. x + y >= 4, x >= 1  → x=4,y=0, cost 8.
        // Encoded as maximize -(2x + 3y).
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[-2.0, -3.0]);
        lp.add_constraint(&[1.0, 1.0], Cmp::Ge, 4.0);
        lp.add_constraint(&[1.0, 0.0], Cmp::Ge, 1.0);
        let sol = lp.solve().unwrap();
        assert_near(sol.objective, -8.0);
        assert_near(sol.x[0], 4.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[1.0], Cmp::Le, 1.0);
        lp.add_constraint(&[1.0], Cmp::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 0.0]);
        lp.add_constraint(&[0.0, 1.0], Cmp::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x - y <= -1 means y >= x + 1; max x s.t. y <= 3 → x = 2.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 0.0]);
        lp.add_constraint(&[1.0, -1.0], Cmp::Le, -1.0);
        lp.add_constraint(&[0.0, 1.0], Cmp::Le, 3.0);
        let sol = lp.solve().unwrap();
        assert_near(sol.objective, 2.0);
    }

    #[test]
    fn degenerate_program() {
        // Degeneracy: redundant constraints meeting at a vertex.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.add_constraint(&[1.0, 0.0], Cmp::Le, 2.0);
        lp.add_constraint(&[1.0, 0.0], Cmp::Le, 2.0);
        lp.add_constraint(&[0.0, 1.0], Cmp::Le, 2.0);
        lp.add_constraint(&[1.0, 1.0], Cmp::Le, 4.0);
        let sol = lp.solve().unwrap();
        assert_near(sol.objective, 4.0);
    }

    #[test]
    fn assignment_relaxation_shape() {
        // A miniature Fig.-7 relaxation: 2 VIPs × 3 instances, minimize
        // instance count. x_vy ∈ [0,1]; y_y ∈ [0,1].
        // Variables: x00 x01 x02 x10 x11 x12 y0 y1 y2.
        let mut lp = LinearProgram::new(9);
        lp.set_objective(&[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, -1.0, -1.0, -1.0]);
        // Σ_y x_vy = 1 for each VIP (n_v = 1).
        lp.add_constraint(&[1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], Cmp::Eq, 1.0);
        lp.add_constraint(&[0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0], Cmp::Eq, 1.0);
        // Traffic: 60·x0y + 60·x1y ≤ 100·y_y.
        for y in 0..3 {
            let mut c = vec![0.0; 9];
            c[y] = 60.0;
            c[3 + y] = 60.0;
            c[6 + y] = -100.0;
            lp.add_constraint(&c, Cmp::Le, 0.0);
        }
        // y_y ≤ 1.
        for y in 0..3 {
            let mut c = vec![0.0; 9];
            c[6 + y] = 1.0;
            lp.add_constraint(&c, Cmp::Le, 1.0);
        }
        let sol = lp.solve().unwrap();
        // LP relaxation: total traffic 120 / capacity 100 = 1.2 instances.
        assert_near(sol.objective, -1.2);
    }
}
