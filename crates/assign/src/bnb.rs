//! Exact branch-and-bound over the LP relaxation.
//!
//! Builds the full Figure 7 ILP (binary `x[v][y]` placement variables and
//! `y[y]` instance-open indicators), relaxes integrality, solves with the
//! [`simplex`](crate::simplex) solver, and branches on the most fractional
//! variable. Intended for small/medium inputs (the per-node dense LP costs
//! O((V·Y)²·rows)); trace-scale rounds use [`greedy`](crate::greedy) with
//! the combinatorial bound, mirroring the paper's 10% CPLEX gap.

use crate::model::{AssignError, AssignInput, Assignment};
use crate::simplex::{Cmp, LinearProgram, LpError};

/// Outcome of the exact solver.
#[derive(Debug, Clone)]
pub struct ExactOutcome {
    /// The best assignment found.
    pub assignment: Assignment,
    /// Whether optimality was proven within the node budget.
    pub proven_optimal: bool,
    /// LP/B&B nodes explored.
    pub nodes: usize,
}

/// Variable indexing for the ILP.
struct VarMap {
    num_vips: usize,
    num_insts: usize,
}

impl VarMap {
    fn x(&self, v: usize, y: usize) -> usize {
        v * self.num_insts + y
    }
    fn y(&self, y: usize) -> usize {
        self.num_vips * self.num_insts + y
    }
    fn total(&self) -> usize {
        self.num_vips * self.num_insts + self.num_insts
    }
}

/// Builds the LP relaxation with extra equality fixings from branching.
fn build_lp(input: &AssignInput, fixed: &[(usize, f64)]) -> LinearProgram {
    let vm = VarMap {
        num_vips: input.vips.len(),
        num_insts: input.max_instances,
    };
    let mut lp = LinearProgram::new(vm.total());
    // Objective: minimize Σ y_y → maximize −Σ y_y.
    let mut c = vec![0.0; vm.total()];
    for y in 0..vm.num_insts {
        c[vm.y(y)] = -1.0;
    }
    lp.set_objective(&c);
    // Eq. 3: Σ_y x_vy = n_v.
    for (v, spec) in input.vips.iter().enumerate() {
        let mut row = vec![0.0; vm.total()];
        for y in 0..vm.num_insts {
            row[vm.x(v, y)] = 1.0;
        }
        lp.add_constraint(&row, Cmp::Eq, spec.replicas as f64);
    }
    for y in 0..vm.num_insts {
        // Eq. 1: Σ_v l_v x_vy ≤ T·y_y (also forces y_y once anything is
        // placed).
        let mut row = vec![0.0; vm.total()];
        for (v, spec) in input.vips.iter().enumerate() {
            row[vm.x(v, y)] = spec.load_per_replica();
        }
        row[vm.y(y)] = -input.traffic_capacity;
        lp.add_constraint(&row, Cmp::Le, 0.0);
        // Eq. 2: Σ_v r_v x_vy ≤ R·y_y.
        let mut row = vec![0.0; vm.total()];
        for (v, spec) in input.vips.iter().enumerate() {
            row[vm.x(v, y)] = spec.rules as f64;
        }
        row[vm.y(y)] = -(input.rule_capacity as f64);
        lp.add_constraint(&row, Cmp::Le, 0.0);
        // y_y ≤ 1.
        let mut row = vec![0.0; vm.total()];
        row[vm.y(y)] = 1.0;
        lp.add_constraint(&row, Cmp::Le, 1.0);
        // Linking x_vy ≤ y_y for rule-free, load-free VIPs is covered by
        // the two rows above only when l_v or r_v > 0; add explicit links
        // for robustness on degenerate specs.
        for v in 0..vm.num_vips {
            if input.vips[v].load_per_replica() == 0.0 && input.vips[v].rules == 0 {
                let mut row = vec![0.0; vm.total()];
                row[vm.x(v, y)] = 1.0;
                row[vm.y(y)] = -1.0;
                lp.add_constraint(&row, Cmp::Le, 0.0);
            }
        }
    }
    // x_vy ≤ 1.
    for v in 0..vm.num_vips {
        for y in 0..vm.num_insts {
            let mut row = vec![0.0; vm.total()];
            row[vm.x(v, y)] = 1.0;
            lp.add_constraint(&row, Cmp::Le, 1.0);
        }
    }
    // Eq. 4–7 when a previous assignment and limit exist.
    if let (Some(prev), Some(delta)) = (&input.previous, input.migration_limit) {
        for y in 0..vm.num_insts {
            let old_load: f64 = input
                .vips
                .iter()
                .enumerate()
                .filter(|(v, _)| prev.assigned(*v, y))
                .map(|(_, s)| s.load_per_replica())
                .sum();
            if old_load > input.traffic_capacity {
                continue; // Already overloaded: tolerated (paper §8.2).
            }
            // Σ_{v∉old_y} l_v x_vy ≤ T − old_load (Eq. 4–5).
            let mut row = vec![0.0; vm.total()];
            let mut any = false;
            for (v, spec) in input.vips.iter().enumerate() {
                if !prev.assigned(v, y) {
                    row[vm.x(v, y)] = spec.load_per_replica();
                    any = true;
                }
            }
            if any {
                lp.add_constraint(&row, Cmp::Le, input.traffic_capacity - old_load);
            }
        }
        // Eq. 6–7: kept connections ≥ total − δ·total.
        let total: f64 = input.vips.iter().map(|s| s.connections).sum();
        if total > 0.0 {
            let mut row = vec![0.0; vm.total()];
            let mut old_sum = 0.0;
            for (v, spec) in input.vips.iter().enumerate() {
                if let Some(old) = prev.placement.get(v) {
                    if old.is_empty() {
                        continue;
                    }
                    let share = spec.connections / old.len() as f64;
                    for &y in old {
                        if y < vm.num_insts {
                            row[vm.x(v, y)] = share;
                            old_sum += share;
                        }
                    }
                }
            }
            lp.add_constraint(&row, Cmp::Ge, old_sum - delta * total);
        }
    }
    // Branching fixings.
    for &(var, val) in fixed {
        let mut row = vec![0.0; vm.total()];
        row[var] = 1.0;
        lp.add_constraint(&row, Cmp::Eq, val);
    }
    lp
}

/// Extracts an integral assignment from an LP solution, if integral.
fn extract(input: &AssignInput, x: &[f64]) -> Option<Assignment> {
    let vm = VarMap {
        num_vips: input.vips.len(),
        num_insts: input.max_instances,
    };
    let mut placement = vec![Vec::new(); vm.num_vips];
    for v in 0..vm.num_vips {
        for y in 0..vm.num_insts {
            let val = x[vm.x(v, y)];
            if val > 0.99 {
                placement[v].push(y);
            } else if val > 0.01 {
                return None; // fractional
            }
        }
    }
    Some(Assignment::new(placement))
}

/// Finds the most fractional x variable for branching.
fn most_fractional(input: &AssignInput, x: &[f64]) -> Option<usize> {
    let vm = VarMap {
        num_vips: input.vips.len(),
        num_insts: input.max_instances,
    };
    let mut best: Option<(f64, usize)> = None;
    for v in 0..vm.num_vips {
        for y in 0..vm.num_insts {
            let idx = vm.x(v, y);
            let frac = (x[idx] - x[idx].round()).abs();
            if frac > 0.01 && best.map(|(f, _)| frac > f).unwrap_or(true) {
                best = Some((frac, idx));
            }
        }
    }
    best.map(|(_, idx)| idx)
}

/// Solves the Figure 7 ILP exactly via branch-and-bound (within
/// `node_limit` LP nodes).
///
/// Returns the best assignment found and whether optimality was proven.
/// Uses the greedy solution as the initial incumbent.
pub fn solve_exact(input: &AssignInput, node_limit: usize) -> Result<ExactOutcome, AssignError> {
    // Incumbent from the greedy solver (upper bound).
    let mut incumbent: Option<Assignment> = crate::greedy::solve_greedy(
        input,
        &crate::greedy::GreedyConfig::default(),
    )
    .ok()
    .map(|o| o.assignment);
    let mut best_obj = incumbent
        .as_ref()
        .map(|a| a.num_instances() as f64)
        .unwrap_or(f64::INFINITY);
    let mut nodes = 0usize;
    let mut proven = true;
    // DFS stack of variable fixings.
    let mut stack: Vec<Vec<(usize, f64)>> = vec![Vec::new()];
    while let Some(fixed) = stack.pop() {
        if nodes >= node_limit {
            proven = false;
            break;
        }
        nodes += 1;
        let lp = build_lp(input, &fixed);
        let sol = match lp.solve() {
            Ok(s) => s,
            Err(LpError::Infeasible) => continue,
            Err(_) => {
                proven = false;
                continue;
            }
        };
        let lower = -sol.objective; // minimized instance count
        if lower >= best_obj - 1e-6 {
            continue; // Bound: cannot beat the incumbent.
        }
        if let Some(assignment) = extract(input, &sol.x) {
            if input.validate(&assignment).is_ok() {
                let obj = assignment.num_instances() as f64;
                if obj < best_obj {
                    best_obj = obj;
                    incumbent = Some(assignment);
                }
                continue;
            }
        }
        let Some(var) = most_fractional(input, &sol.x) else {
            continue;
        };
        let mut zero = fixed.clone();
        zero.push((var, 0.0));
        let mut one = fixed;
        one.push((var, 1.0));
        stack.push(zero);
        stack.push(one); // explore x=1 first (LIFO)
    }
    match incumbent {
        Some(assignment) => Ok(ExactOutcome {
            assignment,
            proven_optimal: proven,
            nodes,
        }),
        None => Err(AssignError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VipSpec;

    fn vip(traffic: f64, rules: u64, replicas: usize) -> VipSpec {
        VipSpec {
            traffic,
            rules,
            replicas,
            oversub: 0.0,
            connections: traffic,
        }
    }

    fn input(vips: Vec<VipSpec>, max_instances: usize) -> AssignInput {
        AssignInput {
            vips,
            max_instances,
            traffic_capacity: 100.0,
            rule_capacity: 2000,
            migration_limit: None,
            previous: None,
        }
    }

    #[test]
    fn exact_matches_obvious_optimum() {
        // 60+40 and 50+50 pack into two full instances.
        let inp = input(
            vec![vip(60.0, 10, 1), vip(40.0, 10, 1), vip(50.0, 10, 1), vip(50.0, 10, 1)],
            4,
        );
        let out = solve_exact(&inp, 1000).unwrap();
        assert!(out.proven_optimal);
        assert_eq!(out.assignment.num_instances(), 2);
        assert!(inp.validate(&out.assignment).is_ok());
    }

    #[test]
    fn integrality_gap_case() {
        // Three VIPs of 60: LP bound 1.8, but 60+60 > 100 forces one per
        // instance → integral optimum 3.
        let inp = input(vec![vip(60.0, 10, 1), vip(60.0, 10, 1), vip(60.0, 10, 1)], 4);
        let out = solve_exact(&inp, 1000).unwrap();
        assert!(out.proven_optimal);
        assert_eq!(out.assignment.num_instances(), 3);
    }

    #[test]
    fn exact_handles_replicas() {
        let inp = input(vec![vip(30.0, 10, 3), vip(30.0, 10, 2)], 5);
        let out = solve_exact(&inp, 500).unwrap();
        assert_eq!(out.assignment.placement[0].len(), 3);
        assert_eq!(out.assignment.placement[1].len(), 2);
        // 5 replica-slots, each 10-15 load → 3 instances suffice
        // (replica constraint forces ≥ 3).
        assert_eq!(out.assignment.num_instances(), 3);
    }

    #[test]
    fn exact_beats_or_ties_greedy() {
        // A pattern where FFD can be suboptimal: items 44,44,28,28,28 with
        // capacity 100. FFD: [44,44]... fits 88 + nothing → needs 2 bins
        // anyway; use a sharper case: 55,45,50,50 → optimal 2 (55+45,
        // 50+50); FFD: 55+45=100? 55,50 → 105 no → [55,45],[50,50] FFD
        // finds it too. Keep the assertion ≤ regardless.
        let inp = input(
            vec![vip(55.0, 10, 1), vip(50.0, 10, 1), vip(50.0, 10, 1), vip(45.0, 10, 1)],
            6,
        );
        let greedy = crate::greedy::solve_greedy(&inp, &Default::default()).unwrap();
        let exact = solve_exact(&inp, 2000).unwrap();
        assert!(exact.assignment.num_instances() <= greedy.assignment.num_instances());
        assert_eq!(exact.assignment.num_instances(), 2);
    }

    #[test]
    fn exact_respects_migration_budget() {
        let vips = vec![vip(40.0, 10, 1), vip(40.0, 10, 1)];
        let prev = Assignment::new(vec![vec![0], vec![1]]);
        let inp = AssignInput {
            vips,
            max_instances: 3,
            traffic_capacity: 100.0,
            rule_capacity: 2000,
            migration_limit: Some(0.0),
            previous: Some(prev.clone()),
        };
        let out = solve_exact(&inp, 500).unwrap();
        // δ=0: nothing may migrate, so the assignment must equal prev
        // (even though packing both on one instance would be cheaper).
        assert_eq!(
            prev.migrated_fraction(&out.assignment, &inp.vips),
            0.0,
            "{:?}",
            out.assignment.placement
        );
    }

    #[test]
    fn infeasible_input_reported() {
        let inp = input(vec![vip(150.0, 10, 1)], 2);
        // One VIP, one replica, load 150 > capacity 100 on any instance.
        assert!(solve_exact(&inp, 100).is_err());
    }
}
