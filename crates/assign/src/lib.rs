//! VIP→instance assignment (paper §4.4–4.5, Figure 7).
//!
//! The Yoda controller decides which VIPs (and hence which rule sets) live
//! on which L7 instances. The paper formulates this as an ILP:
//!
//! * **Objective** — minimize the number of instances used.
//! * **Eq. 1 traffic** — every instance can absorb its VIPs' traffic even
//!   after `f_v = n_v · o_v` of each VIP's instances fail: each replica
//!   carries `t_v / (n_v − f_v)`.
//! * **Eq. 2 rules** — per-instance rule memory `R_y` (which caps lookup
//!   latency; Figure 6 maps 2K rules ≈ 5 ms target).
//! * **Eq. 3 replicas** — each VIP gets exactly `n_v` instances.
//! * **Eq. 4–5 transient traffic** — mux updates are not atomic, so during
//!   a transition an instance may carry the max of its old and new load;
//!   that max must fit capacity.
//! * **Eq. 6–7 migration** — at most a fraction δ of connections may
//!   migrate between instances per update (TCPStore throughput bound).
//!
//! The paper solves this with CPLEX at a 10% optimality gap. This crate
//! provides: an exact solver (dense two-phase [`simplex`] + [`bnb`]
//! branch-and-bound) for small/medium instances, the migration-aware
//! [`greedy`] solver with local search for trace-scale inputs (gap
//! reported against a combinatorial lower bound), and the [`alltoall`]
//! baseline the paper compares against in Figure 16.

#![deny(warnings)]

#![forbid(unsafe_code)]

pub mod alltoall;
pub mod bnb;
pub mod greedy;
pub mod model;
pub mod simplex;

pub use alltoall::all_to_all;
pub use bnb::solve_exact;
pub use greedy::{solve_greedy, GreedyConfig};
pub use model::{AssignError, AssignInput, Assignment, TransitionStats, VipSpec};
pub use simplex::{LinearProgram, LpError, LpResult};
