//! The all-to-all baseline (paper §4.4, §8.2).
//!
//! Every VIP (and all of its rules) is assigned to every instance. This
//! gives maximal robustness and the minimum possible instance count — "the
//! total traffic divided by traffic capacity of each instance" — but every
//! instance must store *all* rules, which inflates per-lookup latency
//! (Figure 6). Figure 16(b,c) compares Yoda's many-to-many assignment
//! against this scheme.

use crate::model::{AssignInput, Assignment};

/// Result of the all-to-all computation.
#[derive(Debug, Clone, PartialEq)]
pub struct AllToAll {
    /// The assignment (every VIP on every used instance).
    pub assignment: Assignment,
    /// Instances used: `ceil(total_traffic / capacity)`.
    pub instances: usize,
    /// Rules per instance: the total rule count across all VIPs.
    pub rules_per_instance: u64,
}

/// Computes the all-to-all baseline.
///
/// Note: all-to-all ignores per-VIP replica requirements (`n_v`) — every
/// VIP is on every instance by construction — and provides no failure
/// headroom beyond the shared pool.
pub fn all_to_all(input: &AssignInput) -> AllToAll {
    let total_traffic: f64 = input.vips.iter().map(|v| v.traffic).sum();
    let instances = (total_traffic / input.traffic_capacity).ceil().max(1.0) as usize;
    let everyone: Vec<usize> = (0..instances).collect();
    let placement = vec![everyone; input.vips.len()];
    let rules_per_instance = input.vips.iter().map(|v| v.rules).sum();
    AllToAll {
        assignment: Assignment::new(placement),
        instances,
        rules_per_instance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VipSpec;

    fn vip(traffic: f64, rules: u64) -> VipSpec {
        VipSpec {
            traffic,
            rules,
            replicas: 1,
            oversub: 0.0,
            connections: traffic,
        }
    }

    #[test]
    fn instance_count_is_traffic_over_capacity() {
        let input = AssignInput {
            vips: vec![vip(120.0, 500), vip(90.0, 700), vip(40.0, 300)],
            max_instances: 100,
            traffic_capacity: 100.0,
            rule_capacity: 2000,
            migration_limit: None,
            previous: None,
        };
        let out = all_to_all(&input);
        assert_eq!(out.instances, 3); // 250 / 100 → 3
        assert_eq!(out.rules_per_instance, 1500);
        assert_eq!(out.assignment.num_instances(), 3);
        for p in &out.assignment.placement {
            assert_eq!(p.len(), 3, "every VIP on every instance");
        }
    }

    #[test]
    fn at_least_one_instance() {
        let input = AssignInput {
            vips: vec![vip(0.5, 10)],
            max_instances: 10,
            traffic_capacity: 100.0,
            rule_capacity: 2000,
            migration_limit: None,
            previous: None,
        };
        assert_eq!(all_to_all(&input).instances, 1);
    }
}
