//! Applies a [`ChaosPlan`] to a live [`Testbed`] and runs the scenario.
//!
//! Every fault maps onto the testbed's scheduled injection helpers
//! (crash + fresh restart, partition + heal) or onto time-windowed
//! topology overrides for the WAN impairments. Store faults additionally
//! bump the [`StoreWitness`] epoch at both boundaries so read-after-write
//! verdicts never span a membership change.


use yoda_core::controller::Controller;
use yoda_core::instance::{YodaConfig, YodaInstance};
use yoda_core::testbed::{Testbed, TestbedConfig};
use yoda_http::{BrowserClient, BrowserConfig};
use yoda_l4lb::Mux;
use yoda_netsim::{Addr, LinkSpec, NodeId, SimTime, Zone};

use crate::invariants::check_invariants;
use crate::plan::{ChaosPlan, FaultKind, GrayTarget, PlanBudget, PlanShape};
use crate::witness::StoreWitness;

/// Scenario knobs: testbed shape, client workload, run length, and the
/// generation budget.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Active Yoda instances.
    pub instances: usize,
    /// TCPStore servers.
    pub stores: usize,
    /// L4 muxes.
    pub muxes: usize,
    /// Backend servers.
    pub backends: usize,
    /// Online services (one VIP + one browser each; service 0 runs the
    /// prequal policy so the probe subsystem is exercised).
    pub services: usize,
    /// Concurrent fetch processes per browser.
    pub browser_processes: usize,
    /// Browser retries per object.
    pub retries: u32,
    /// Browser HTTP timeout.
    pub http_timeout: SimTime,
    /// Pages per browser process (`None` = browse until the deadline).
    pub max_pages: Option<u64>,
    /// Total simulated run length.
    pub deadline: SimTime,
    /// Fault-plan budget.
    pub budget: PlanBudget,
    /// Sharded-executor workers for the testbed run (`0` = classic
    /// single-threaded). The stock browser/TCP handlers draw from
    /// per-node RNG streams (`Ctx::node_rng`), so chaos runs shard at
    /// any worker count with digests identical to single-threaded —
    /// seed repro commands stay valid regardless of this knob.
    pub threads: usize,
    /// Enable the mux fast-path flow splicing on the instances, so
    /// steady-state forwarding (and its revocation/failover machinery)
    /// is under fire too.
    pub splice: bool,
}

impl ChaosScenario {
    /// Availability-preserving scenario: generous retries and timeout,
    /// floors enforced — zero broken flows expected.
    pub fn survivable() -> Self {
        ChaosScenario {
            instances: 3,
            stores: 3,
            muxes: 2,
            backends: 4,
            services: 2,
            browser_processes: 2,
            retries: 2,
            http_timeout: SimTime::from_secs(10),
            max_pages: None,
            deadline: SimTime::from_secs(45),
            budget: PlanBudget::survivable(),
            threads: 0,
            splice: false,
        }
    }

    /// Graceful-degradation scenario: no retries, short timeout, floors
    /// lifted — every fetch must still resolve in bounded time.
    pub fn unconstrained() -> Self {
        ChaosScenario {
            instances: 3,
            stores: 3,
            muxes: 2,
            backends: 4,
            services: 2,
            browser_processes: 2,
            retries: 0,
            http_timeout: SimTime::from_secs(5),
            max_pages: Some(1),
            deadline: SimTime::from_secs(100),
            budget: PlanBudget::unconstrained(),
            threads: 0,
            splice: false,
        }
    }

    /// The plan shape this scenario's testbed presents.
    pub fn shape(&self) -> PlanShape {
        PlanShape {
            instances: self.instances,
            stores: self.stores,
            muxes: self.muxes,
            backends: self.backends,
            services: self.services,
        }
    }
}

/// Everything a chaos run produced: aggregate client counters, witness
/// verdicts, the engine digest (for byte-identity checks), and the
/// invariant violations (empty = pass).
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The generating seed.
    pub seed: u64,
    /// Whether the plan was survivable.
    pub survivable: bool,
    /// The full schedule (printed on failure for one-command repro).
    pub plan: ChaosPlan,
    /// Engine event digest at the deadline.
    pub digest: u64,
    /// Events processed.
    pub events: u64,
    /// Fetches completed across all browsers.
    pub completed: u64,
    /// Broken flows (retries exhausted) across all browsers.
    pub broken_flows: u64,
    /// Fetch attempts that timed out.
    pub timeouts: u64,
    /// Fetch attempts reset by the server side.
    pub resets: u64,
    /// Pages fully fetched.
    pub pages_completed: u64,
    /// Witness pairs that produced a verdict.
    pub witness_checks: u64,
    /// Witness pairs skipped across store-fault boundaries.
    pub witness_skipped: u64,
    /// Component recoveries the controller re-integrated.
    pub recoveries_detected: u64,
    /// Packets forwarded on the mux fast path (summed across muxes).
    pub spliced: u64,
    /// Splice installs the instances issued (first installs + re-installs
    /// after mux failover).
    pub splices_installed: u64,
    /// Times any instance entered store-brownout degraded mode.
    pub degraded_entries: u64,
    /// Write-behind records dropped on buffer overflow (summed).
    pub write_behind_dropped: u64,
    /// Hedged store reads fired across all instances.
    pub store_hedges: u64,
    /// Store op retries fired across all instances.
    pub store_retries: u64,
    /// Store replica quarantine entries across all instances.
    pub store_quarantines: u64,
    /// Instance derates the controller issued (suspect, not dead).
    pub derates: u64,
    /// Invariant violations (empty = the run passed).
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary plus the plan and any violations — the string a
    /// failing test prints.
    pub fn render(&self) -> String {
        let mut out = format!(
            "seed {} ({}): completed={} broken={} timeouts={} resets={} pages={} \
             witness(ok={} skipped={}) recoveries={} spliced={}/{} \
             gray(degraded={} wb_dropped={} hedges={} retries={} quarantines={} derates={}) \
             digest={:#018x}\n{}",
            self.seed,
            if self.survivable {
                "survivable"
            } else {
                "unconstrained"
            },
            self.completed,
            self.broken_flows,
            self.timeouts,
            self.resets,
            self.pages_completed,
            self.witness_checks,
            self.witness_skipped,
            self.recoveries_detected,
            self.spliced,
            self.splices_installed,
            self.degraded_entries,
            self.write_behind_dropped,
            self.store_hedges,
            self.store_retries,
            self.store_quarantines,
            self.derates,
            self.digest,
            self.plan.render(),
        );
        for v in &self.violations {
            out.push_str("  VIOLATION: ");
            out.push_str(v);
            out.push('\n');
        }
        out
    }
}

/// Generates the plan for `seed` under the scenario's budget and runs it.
pub fn run_seed(seed: u64, sc: &ChaosScenario) -> ChaosReport {
    let plan = ChaosPlan::generate(seed, &sc.shape(), &sc.budget);
    run_plan(&plan, sc)
}

/// Builds the testbed, schedules the plan, runs to the deadline, and
/// checks the invariants.
pub fn run_plan(plan: &ChaosPlan, sc: &ChaosScenario) -> ChaosReport {
    let mut tb = Testbed::build(TestbedConfig {
        seed: plan.seed,
        num_instances: sc.instances,
        num_spares: 0,
        num_stores: sc.stores,
        num_backends: sc.backends,
        num_muxes: sc.muxes,
        num_services: sc.services,
        pages_per_site: 12,
        threads: sc.threads,
        yoda: YodaConfig {
            splice: sc.splice,
            ..YodaConfig::default()
        },
        ..TestbedConfig::default()
    });

    // Service 0 switches to the probe-driven prequal policy shortly
    // after start, so quarantine/readmission is part of every run.
    if let Some(&vip) = tb.vips.first() {
        let backends: Vec<String> = tb
            .service_backends
            .first()
            .map(|sb| sb.iter().map(|b| b.to_string()).collect())
            .unwrap_or_default();
        let rules = format!(
            "name=pq-0 priority=1 match * action=prequal {}",
            backends.join(" ")
        );
        tb.set_policy_at(vip, &rules, SimTime::from_millis(100));
    }

    let browser_cfg = BrowserConfig {
        processes: sc.browser_processes,
        retries: sc.retries,
        http_timeout: sc.http_timeout,
        max_pages: sc.max_pages,
        ..BrowserConfig::default()
    };
    let browsers: Vec<NodeId> = (0..sc.services)
        .map(|s| tb.add_browser(s, browser_cfg.clone()))
        .collect();

    let witness_addr = Addr::new(10, 0, 6, 1);
    let witness = tb.engine.add_node(
        "chaos-witness",
        witness_addr,
        Zone::Dc,
        Box::new(StoreWitness::new(witness_addr, &tb.store_addrs)),
    );

    apply_plan(&mut tb, plan, Some(witness));
    tb.run_for(sc.deadline);

    let violations = check_invariants(&tb, plan, &browsers, witness, sc);
    let mut report = ChaosReport {
        seed: plan.seed,
        survivable: plan.survivable,
        plan: plan.clone(),
        digest: tb.engine.event_digest(),
        events: tb.engine.events_processed(),
        completed: 0,
        broken_flows: 0,
        timeouts: 0,
        resets: 0,
        pages_completed: 0,
        witness_checks: 0,
        witness_skipped: 0,
        recoveries_detected: 0,
        spliced: 0,
        splices_installed: 0,
        degraded_entries: 0,
        write_behind_dropped: 0,
        store_hedges: 0,
        store_retries: 0,
        store_quarantines: 0,
        derates: 0,
        violations,
    };
    for &b in &browsers {
        if let Some(bc) = tb.engine.try_node_ref::<BrowserClient>(b) {
            report.completed += bc.completed;
            report.broken_flows += bc.broken_flows;
            report.timeouts += bc.timeouts;
            report.resets += bc.resets;
            report.pages_completed += bc.pages_completed;
        }
    }
    if let Some(w) = tb.engine.try_node_ref::<StoreWitness>(witness) {
        report.witness_checks = w.checks;
        report.witness_skipped = w.skipped;
    }
    for &m in &tb.muxes {
        if let Some(mx) = tb.engine.try_node_ref::<Mux>(m) {
            report.spliced += mx.spliced;
        }
    }
    for &i in &tb.instances {
        if let Some(inst) = tb.engine.try_node_ref::<YodaInstance>(i) {
            report.splices_installed += inst.splices_installed;
            report.degraded_entries += inst.degraded_entries;
            report.write_behind_dropped += inst.wb_dropped;
            let sc = inst.store_client();
            report.store_hedges += sc.hedges;
            report.store_retries += sc.retries;
            report.store_quarantines += sc.quarantines;
        }
    }
    if let Some(c) = tb.engine.try_node_ref::<Controller>(tb.controller) {
        report.recoveries_detected = c.recoveries_detected;
        report.derates = c.derates;
    }
    report
}

/// Schedules every fault of `plan` onto the testbed. `witness` (when
/// present) gets its epoch bumped at each store-fault boundary, *before*
/// the fault itself so in-flight pairs are disqualified first.
pub fn apply_plan(tb: &mut Testbed, plan: &ChaosPlan, witness: Option<NodeId>) {
    for f in &plan.faults {
        let (at, end) = (f.at, f.end());
        match f.kind {
            FaultKind::InstanceCrash { i } => {
                tb.fail_instance_at(i, at);
                tb.restore_instance_at(i, end);
            }
            FaultKind::InstancePartition { i } => {
                if let Some(&id) = tb.instances.get(i) {
                    tb.partition_at(id, at);
                    tb.heal_at(id, end);
                }
            }
            FaultKind::StoreCrash { i } => {
                bump_epoch_at(tb, witness, at);
                tb.fail_store_at(i, at);
                bump_epoch_at(tb, witness, end);
                tb.restore_store_at(i, end);
            }
            FaultKind::StorePartition { i } => {
                bump_epoch_at(tb, witness, at);
                if let Some(&id) = tb.stores.get(i) {
                    tb.partition_at(id, at);
                    bump_epoch_at(tb, witness, end);
                    tb.heal_at(id, end);
                }
            }
            FaultKind::MuxCrash { i } => {
                tb.fail_mux_at(i, at);
                tb.restore_mux_at(i, end);
            }
            FaultKind::BackendCrash { i } => {
                tb.fail_backend_at(i, at);
                tb.restore_backend_at(i, end);
            }
            FaultKind::ControllerKill => {
                tb.fail_controller_at(at);
            }
            FaultKind::WanLossBurst { loss_pct } => {
                let loss = f64::from(loss_pct.min(100)) / 100.0;
                wan_override(tb, at, end, move |base| LinkSpec { loss, ..base });
            }
            FaultKind::WanLatencySpike { extra_ms } => {
                let extra = SimTime::from_millis(u64::from(extra_ms));
                wan_override(tb, at, end, move |base| LinkSpec {
                    latency: base.latency + extra,
                    ..base
                });
            }
            FaultKind::WanPartition { to_dc, to_ext } => {
                let dirs: Vec<(Zone, Zone)> = [
                    (to_dc, (Zone::External, Zone::Dc)),
                    (to_ext, (Zone::Dc, Zone::External)),
                ]
                .into_iter()
                .filter_map(|(on, d)| on.then_some(d))
                .collect();
                wan_override_dirs(tb, at, end, dirs, |_| LinkSpec::blackhole());
            }
            FaultKind::NodeSlowdown { node, factor } => match node {
                GrayTarget::Store(i) if i < tb.stores.len() => {
                    bump_epoch_at(tb, witness, at);
                    tb.slowdown_store_at(i, f64::from(factor), at);
                    bump_epoch_at(tb, witness, end);
                    tb.slowdown_store_at(i, 1.0, end);
                }
                GrayTarget::Backend(i) if i < tb.backends.len() => {
                    tb.slowdown_backend_at(i, f64::from(factor), at);
                    tb.slowdown_backend_at(i, 1.0, end);
                }
                _ => {}
            },
            FaultKind::LinkDegrade {
                node,
                loss_pct,
                jitter_ms,
            } => {
                if let Some(id) = gray_node(tb, node) {
                    if matches!(node, GrayTarget::Store(_)) {
                        bump_epoch_at(tb, witness, at);
                        bump_epoch_at(tb, witness, end);
                    }
                    let loss = f64::from(loss_pct.min(100)) / 100.0;
                    let jitter = SimTime::from_millis(u64::from(jitter_ms));
                    tb.degrade_links_at(id, loss, jitter, at);
                    tb.degrade_links_at(id, 0.0, SimTime::ZERO, end);
                }
            }
            FaultKind::AsymmetricPartition { node, inbound } => {
                if let Some(id) = gray_node(tb, node) {
                    if matches!(node, GrayTarget::Store(_)) {
                        bump_epoch_at(tb, witness, at);
                        bump_epoch_at(tb, witness, end);
                    }
                    tb.partition_dirs_at(id, inbound, !inbound, at);
                    tb.heal_at(id, end);
                }
            }
        }
    }
}

/// Resolves a gray-fault target to its testbed node (generator indices
/// always fit the shape; hand-built plans may not, so misses are no-ops).
fn gray_node(tb: &Testbed, node: GrayTarget) -> Option<NodeId> {
    match node {
        GrayTarget::Instance(i) => tb.instances.get(i).copied(),
        GrayTarget::Store(i) => tb.stores.get(i).copied(),
        GrayTarget::Mux(i) => tb.muxes.get(i).copied(),
        GrayTarget::Backend(i) => tb.backends.get(i).copied(),
    }
}

/// Symmetric WAN override (both directions) for the window `[at, end)`.
fn wan_override(
    tb: &mut Testbed,
    at: SimTime,
    end: SimTime,
    mk: impl Fn(LinkSpec) -> LinkSpec + Send + 'static,
) {
    let dirs = vec![(Zone::External, Zone::Dc), (Zone::Dc, Zone::External)];
    wan_override_dirs(tb, at, end, dirs, mk);
}

/// Applies `mk(base_link)` as a stacked override on each directed zone
/// pair at `at` and clears it at `end`. The apply closure schedules the
/// clear closure itself, passing the override ids by value — message
/// passing through the event queue, where a shared `Rc<RefCell<…>>` cell
/// would make both closures non-`Send` (tidy: shard-nonsend-rc/cell).
fn wan_override_dirs(
    tb: &mut Testbed,
    at: SimTime,
    end: SimTime,
    dirs: Vec<(Zone, Zone)>,
    mk: impl Fn(LinkSpec) -> LinkSpec + Send + 'static,
) {
    tb.engine.schedule(at, move |eng| {
        let topo = eng.topology_mut();
        let mut ids = Vec::new();
        for (from, to) in dirs {
            let spec = mk(*topo.link(from, to));
            ids.push((from, to, topo.apply_override(from, to, spec)));
        }
        eng.schedule(end, move |eng| {
            let topo = eng.topology_mut();
            for (from, to, id) in ids {
                topo.clear_override(from, to, id);
            }
        });
    });
}

/// Bumps the witness epoch at `at` (scheduled before the co-timed fault
/// so the bump runs first).
fn bump_epoch_at(tb: &mut Testbed, witness: Option<NodeId>, at: SimTime) {
    let Some(w) = witness else {
        return;
    };
    tb.engine.schedule(at, move |eng| {
        if let Some(node) = eng.try_node_mut::<StoreWitness>(w) {
            node.bump_epoch();
        }
    });
}
