//! Online TCPStore read-after-write witness.
//!
//! A [`StoreWitness`] is a small in-DC node that continuously writes a
//! fresh key through the TCPStore client library and immediately reads
//! it back, asserting the §6 replication contract: as long as fewer
//! than the replication factor of store servers are impaired at once,
//! every acknowledged write is readable.
//!
//! The check must not fire across a store-membership change — a pair
//! whose window contains a store crash, partition, heal, or restart
//! proves nothing either way. The orchestrator therefore bumps the
//! witness's *epoch* at every store-fault boundary, and any set→get
//! pair that observes two different epochs is skipped instead of
//! judged.

use bytes::Bytes;
use yoda_netsim::{Addr, Ctx, Endpoint, Node, Packet, SimTime, TimerToken};
use yoda_tcpstore::{StoreClient, StoreClientConfig, StoreEvent, StoreOutcome};

/// Timer discriminator for the witness's own pacing tick (distinct from
/// the store client's `STORE_TIMER_KIND`).
pub const WITNESS_TICK_KIND: u32 = 0xC4A0;

/// Port the witness's store client binds.
const WITNESS_PORT: u16 = 7007;

/// Phase of the in-flight pair.
#[derive(Debug, Clone, Copy)]
enum Phase {
    Set,
    Get,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    seq: u64,
    phase: Phase,
    epoch0: u64,
}

/// The witness node: periodic set→get pairs with epoch-guarded
/// read-after-write verdicts.
pub struct StoreWitness {
    client: StoreClient,
    period: SimTime,
    seq: u64,
    epoch: u64,
    pending: Option<Pending>,
    /// Pairs judged (set acknowledged, get returned the written value).
    pub checks: u64,
    /// Pairs skipped because a store-fault boundary intersected them.
    pub skipped: u64,
    /// Read-after-write violations observed (empty on a healthy run).
    pub violations: Vec<String>,
}

impl StoreWitness {
    /// A witness at `addr` talking to the given store servers.
    pub fn new(addr: Addr, servers: &[Addr]) -> Self {
        StoreWitness {
            client: StoreClient::new(
                StoreClientConfig::default(),
                Endpoint::new(addr, WITNESS_PORT),
                servers,
            ),
            period: SimTime::from_millis(250),
            seq: 0,
            epoch: 0,
            pending: None,
            checks: 0,
            skipped: 0,
            violations: Vec::new(),
        }
    }

    /// Called by the orchestrator at every store-fault boundary (crash,
    /// partition, heal, restart): pairs spanning the bump are skipped.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    fn key(seq: u64) -> Bytes {
        Bytes::from(format!("chaos/witness/{seq}"))
    }

    fn value(seq: u64) -> Bytes {
        Bytes::from(seq.to_le_bytes().to_vec())
    }

    fn start_pair(&mut self, ctx: &mut Ctx<'_>) {
        self.seq += 1;
        let seq = self.seq;
        self.client
            .set(ctx, Self::key(seq), Self::value(seq), seq);
        self.pending = Some(Pending {
            seq,
            phase: Phase::Set,
            epoch0: self.epoch,
        });
    }

    fn violation(&mut self, now: SimTime, what: &str, seq: u64) {
        self.violations
            .push(format!("[{:.3}s] {what} (pair {seq})", now.as_secs_f64()));
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, events: Vec<StoreEvent>) {
        for ev in events {
            let Some(p) = self.pending else {
                continue;
            };
            if ev.tag != p.seq {
                continue;
            }
            if self.epoch != p.epoch0 {
                // A store fault or heal intersected this pair: no verdict.
                self.skipped += 1;
                self.pending = None;
                continue;
            }
            let now = ctx.now();
            match p.phase {
                Phase::Set => match ev.outcome {
                    StoreOutcome::Done { acks } if acks >= 1 => {
                        self.client.get(ctx, Self::key(p.seq), p.seq);
                        self.pending = Some(Pending {
                            phase: Phase::Get,
                            ..p
                        });
                    }
                    StoreOutcome::Done { .. } | StoreOutcome::TimedOut => {
                        self.violation(
                            now,
                            "set got zero acks with stable store membership",
                            p.seq,
                        );
                        self.pending = None;
                    }
                    _ => {
                        self.pending = None;
                    }
                },
                Phase::Get => {
                    match ev.outcome {
                        StoreOutcome::Value(v) => {
                            if v == Self::value(p.seq) {
                                self.checks += 1;
                            } else {
                                self.violation(
                                    now,
                                    "read-after-write returned a different value",
                                    p.seq,
                                );
                            }
                        }
                        StoreOutcome::Miss => {
                            self.violation(now, "read-after-write miss", p.seq);
                        }
                        StoreOutcome::TimedOut => {
                            self.violation(
                                now,
                                "read-after-write get timed out with stable store membership",
                                p.seq,
                            );
                        }
                        StoreOutcome::Done { .. } => {}
                    }
                    self.pending = None;
                }
            }
        }
    }
}

impl Node for StoreWitness {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.period, TimerToken::new(WITNESS_TICK_KIND));
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let events = self.client.on_packet(ctx, &pkt);
        self.handle(ctx, events);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if token.kind == WITNESS_TICK_KIND {
            if self.pending.is_none() {
                self.start_pair(ctx);
            }
            ctx.set_timer(self.period, TimerToken::new(WITNESS_TICK_KIND));
        } else {
            let events = self.client.on_timer(ctx, token);
            self.handle(ctx, events);
        }
    }
}
