//! **yoda-chaos**: seeded fault-plan generation, orchestration, and
//! availability-invariant checking for the Yoda testbed.
//!
//! The paper's central claim is *availability under churn*: Yoda keeps
//! every established flow alive through instance, mux, store, and
//! backend failures as long as a few preconditions hold (§6). This
//! crate turns that claim into a repeatable, FoundationDB-style
//! simulation-chaos harness:
//!
//! * [`plan`] — a [`ChaosPlan`](plan::ChaosPlan) is a deterministic
//!   function of a single seed plus a budget. *Survivable* budgets keep
//!   the schedule inside the availability preconditions; *unconstrained*
//!   budgets deliberately violate them to test graceful degradation.
//! * [`orchestrator`] — maps each fault onto the testbed's injection
//!   helpers (crash/restart, partition/heal) or onto time-windowed
//!   topology overrides (loss bursts, latency spikes, WAN blackholes),
//!   runs the scenario, and collects a [`ChaosReport`](orchestrator::ChaosReport).
//! * [`witness`] — an in-DC node that continuously verifies TCPStore
//!   read-after-write on surviving replicas, with epoch guards so
//!   verdicts never span a store-membership change.
//! * [`invariants`] — post-run checks: flow conservation, zero broken
//!   flows (survivable), bounded resolution (unconstrained),
//!   controller/instance rule convergence, and probe-pool liveness.
//!
//! A failing seed reproduces bit-for-bit: `ChaosPlan::generate(seed, …)`
//! rebuilds the identical schedule and `run_plan` the identical run
//! (the report carries the engine's event digest to prove it).

#![deny(warnings)]
#![forbid(unsafe_code)]

pub mod invariants;
pub mod orchestrator;
pub mod plan;
pub mod witness;

pub use invariants::check_invariants;
pub use orchestrator::{apply_plan, run_plan, run_seed, ChaosReport, ChaosScenario};
pub use plan::{ChaosPlan, Fault, FaultKind, GrayTarget, PlanBudget, PlanShape};
pub use witness::{StoreWitness, WITNESS_TICK_KIND};
