//! Post-run availability invariants.
//!
//! After the engine reaches the deadline the checker inspects the final
//! state. Conservation and bounded-resolution invariants apply to every
//! plan; the zero-breakage, read-after-write, convergence, and
//! probe-liveness invariants only apply to survivable plans (whose
//! schedules respect Yoda's availability preconditions).

use yoda_core::controller::Controller;
use yoda_core::instance::YodaInstance;
use yoda_core::rules::RuleTable;
use yoda_core::testbed::Testbed;
use yoda_http::{BrowserClient, OriginServer};
use yoda_netsim::NodeId;
use yoda_tcpstore::StoreServer;

use crate::orchestrator::ChaosScenario;
use crate::plan::ChaosPlan;
use crate::witness::StoreWitness;

/// Runs every applicable invariant; returns human-readable violations
/// (empty = the run passed).
pub fn check_invariants(
    tb: &Testbed,
    plan: &ChaosPlan,
    browsers: &[NodeId],
    witness: NodeId,
    sc: &ChaosScenario,
) -> Vec<String> {
    let mut v = Vec::new();
    let now = tb.engine.now();

    // --- Conservation: no fetch ever vanishes (all plans). -------------
    let mut total_completed = 0u64;
    let mut total_broken = 0u64;
    let mut total_in_flight = 0u64;
    for (bi, &b) in browsers.iter().enumerate() {
        let Some(bc) = tb.engine.try_node_ref::<BrowserClient>(b) else {
            v.push(format!("browser {bi}: node unreadable"));
            continue;
        };
        let accounted =
            bc.completed + bc.timeouts + bc.resets + bc.session_resets + bc.in_flight() as u64;
        if bc.started_fetches != accounted {
            v.push(format!(
                "browser {bi}: conservation broken — started {} != accounted {} \
                 (completed {} + timeouts {} + resets {} + session_resets {} + in_flight {})",
                bc.started_fetches,
                accounted,
                bc.completed,
                bc.timeouts,
                bc.resets,
                bc.session_resets,
                bc.in_flight()
            ));
        }
        total_completed += bc.completed;
        total_broken += bc.broken_flows;
        total_in_flight += bc.in_flight() as u64;
    }
    if total_completed == 0 {
        v.push("no fetch completed in the whole run".to_string());
    }

    // --- Degraded-mode drops are bounded and accounted (all plans). ----
    // Every record that entered the write-behind buffer is either still
    // queued, replayed after a heal, or counted as dropped — and the
    // queue itself never exceeds its configured cap.
    let wb_cap = tb.yoda_cfg.write_behind_cap;
    for (&id, addr) in tb.instances.iter().zip(&tb.instance_addrs) {
        let Some(inst) = tb.engine.try_node_ref::<YodaInstance>(id) else {
            continue;
        };
        let queued = inst.write_behind_len() as u64;
        let accounted = inst.wb_drained + inst.wb_dropped + queued;
        if inst.wb_enqueued != accounted {
            v.push(format!(
                "instance {addr}: write-behind conservation broken — enqueued {} != \
                 accounted {} (drained {} + dropped {} + queued {queued})",
                inst.wb_enqueued, accounted, inst.wb_drained, inst.wb_dropped
            ));
        }
        if queued as usize > wb_cap {
            v.push(format!(
                "instance {addr}: write-behind queue {queued} exceeds its cap {wb_cap}"
            ));
        }
    }

    // --- Bounded resolution (drain) for finite workloads. --------------
    if sc.max_pages.is_some() && total_in_flight != 0 {
        v.push(format!(
            "{total_in_flight} fetches still unresolved at the deadline — a \
             finite workload must drain (bounded timeouts, never hung)"
        ));
    }

    if !plan.survivable {
        return v;
    }

    // --- Zero user-visible breakage (survivable only). -----------------
    if total_broken != 0 {
        v.push(format!(
            "{total_broken} broken flows under a survivable plan (expected 0)"
        ));
    }

    // --- Read-after-write on surviving replicas. -----------------------
    match tb.engine.try_node_ref::<StoreWitness>(witness) {
        Some(w) => {
            for wv in &w.violations {
                v.push(format!("store witness: {wv}"));
            }
            if w.checks == 0 {
                v.push("store witness never completed a verdict pair".to_string());
            }
        }
        None => v.push("store witness node unreadable".to_string()),
    }

    // --- Every component healed and back alive. ------------------------
    let all = tb
        .instances
        .iter()
        .chain(&tb.muxes)
        .chain(&tb.stores)
        .chain(&tb.backends)
        .chain([&tb.controller]);
    for &id in all {
        if !tb.engine.is_alive(id) {
            v.push(format!(
                "{} still dead after every fault healed",
                tb.engine.node_name(id)
            ));
        } else if tb.engine.is_partitioned(id) {
            v.push(format!(
                "{} still partitioned after every fault healed",
                tb.engine.node_name(id)
            ));
        } else if tb.engine.is_link_degraded(id) {
            v.push(format!(
                "{} links still degraded after every fault healed",
                tb.engine.node_name(id)
            ));
        }
    }

    // --- Slowdowns healed: every speed factor back to 1.0. -------------
    for (&id, addr) in tb.stores.iter().zip(&tb.store_addrs) {
        if let Some(s) = tb.engine.try_node_ref::<StoreServer>(id) {
            if s.speed_factor() != 1.0 {
                v.push(format!(
                    "store {addr} still slowed ({}x) after every fault healed",
                    s.speed_factor()
                ));
            }
        }
    }
    for &id in &tb.backends {
        if let Some(s) = tb.engine.try_node_ref::<OriginServer>(id) {
            if s.speed_factor() != 1.0 {
                v.push(format!(
                    "backend {} still slowed ({}x) after every fault healed",
                    tb.engine.node_name(id),
                    s.speed_factor()
                ));
            }
        }
    }

    // --- Brownout heal ⇒ write-behind drains. --------------------------
    // Survivable schedules heal every gray fault well before the
    // deadline, so no instance may still be running degraded, and every
    // queued write-behind record must have replayed to the store.
    for (&id, addr) in tb.instances.iter().zip(&tb.instance_addrs) {
        if !tb.engine.is_alive(id) {
            continue;
        }
        let Some(inst) = tb.engine.try_node_ref::<YodaInstance>(id) else {
            continue;
        };
        if inst.is_degraded() {
            v.push(format!(
                "instance {addr} still in degraded mode after every store fault healed"
            ));
        } else if inst.write_behind_len() != 0 {
            v.push(format!(
                "instance {addr}: {} write-behind records never drained after heal",
                inst.write_behind_len()
            ));
        }
    }

    // --- Controller/assignment convergence after heal. -----------------
    let Some(ctrl) = tb.engine.try_node_ref::<Controller>(tb.controller) else {
        v.push("controller unreadable under a survivable plan".to_string());
        return v;
    };
    for (vip, text) in ctrl.vip_rules_text() {
        let Some(expected) = RuleTable::parse(&text).map(|t| t.to_text()) else {
            v.push(format!("controller holds unparsable rules for {vip}"));
            continue;
        };
        let assigned = ctrl.vip_instances(vip);
        if assigned.is_empty() {
            v.push(format!("no instance assigned to {vip} after heal"));
        }
        for addr in assigned {
            let Some(id) = tb.engine.node_by_addr(addr) else {
                v.push(format!("{vip}: assigned instance {addr} unknown"));
                continue;
            };
            if !tb.engine.is_alive(id) {
                continue; // already reported above
            }
            let Some(inst) = tb.engine.try_node_ref::<YodaInstance>(id) else {
                v.push(format!("{vip}: instance {addr} unreadable"));
                continue;
            };
            match inst.vip_rules_text().get(&vip) {
                Some(got) if *got == expected => {}
                Some(_) => v.push(format!(
                    "{vip}: instance {addr} rules diverge from the controller after heal"
                )),
                None => v.push(format!(
                    "{vip}: instance {addr} is assigned but has no rules installed"
                )),
            }
        }
    }

    // --- Probe-pool liveness: quarantines lapse after heal. ------------
    for (&id, addr) in tb.instances.iter().zip(&tb.instance_addrs) {
        if !tb.engine.is_alive(id) {
            continue;
        }
        let Some(inst) = tb.engine.try_node_ref::<YodaInstance>(id) else {
            continue;
        };
        let quarantined = inst.prober().quarantined(now);
        if !quarantined.is_empty() {
            v.push(format!(
                "instance {addr}: {} backends still quarantined at the deadline: {:?}",
                quarantined.len(),
                quarantined
            ));
        }
    }

    v
}
