//! Seeded fault-plan generation (FoundationDB-style simulation chaos).
//!
//! A [`ChaosPlan`] is a pure function of `(seed, shape, budget)`: the same
//! three inputs always produce the identical fault schedule, so a failing
//! run reproduces bit-for-bit from the seed printed by the test harness.
//! Plans come in two flavours, selected by the budget:
//!
//! * **survivable** — the generator enforces the availability
//!   preconditions under which Yoda promises zero user-visible breakage
//!   (§6): never fewer than `min_live_instances` instances or
//!   `min_live_muxes` muxes, at most `max_stores_impaired`
//!   (replication factor − 1) store servers impaired at once, at least
//!   one live backend per service, WAN partitions far shorter than the
//!   browser timeout, and no controller kill.
//! * **unconstrained** — the floors are lifted and the controller itself
//!   may be killed (permanently). Such runs are only expected to degrade
//!   *gracefully*: every fetch resolves in bounded time and no flow
//!   vanishes from the conservation counters.

use std::fmt;

use yoda_netsim::rng::Rng;
use yoda_netsim::SimTime;

/// Minimum spacing enforced between two faults that touch the same
/// target, so a restore and the next crash of one component never land
/// on the same instant (scheduling order would then depend on plan
/// order, not time).
const TARGET_GAP: SimTime = SimTime::from_millis(1);

/// One injectable fault. Component targets are indices into the
/// testbed's component vectors (`instances[i]`, `stores[i]`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Kill Yoda instance `i`; restart it with fresh state at the end.
    InstanceCrash {
        /// Instance index.
        i: usize,
    },
    /// Partition instance `i` (alive, timers firing, no packets in or
    /// out); heal at the end.
    InstancePartition {
        /// Instance index.
        i: usize,
    },
    /// Kill store server `i`; restart it empty at the end.
    StoreCrash {
        /// Store index.
        i: usize,
    },
    /// Partition store server `i`; heal at the end (data survives).
    StorePartition {
        /// Store index.
        i: usize,
    },
    /// Kill mux `i`; restart it with a cold flow table at the end.
    MuxCrash {
        /// Mux index.
        i: usize,
    },
    /// Kill backend `i`; restart it at the end.
    BackendCrash {
        /// Backend index.
        i: usize,
    },
    /// Kill the controller. Never restored: the control plane stays dead
    /// for the rest of the run (unconstrained plans only).
    ControllerKill,
    /// Raise WAN loss to `loss_pct`% in both directions for the window.
    WanLossBurst {
        /// Packet loss percentage (0–100).
        loss_pct: u32,
    },
    /// Add `extra_ms` of one-way latency to the WAN in both directions.
    WanLatencySpike {
        /// Added one-way latency in milliseconds.
        extra_ms: u32,
    },
    /// Blackhole the WAN: `to_dc` cuts client→DC, `to_ext` cuts
    /// DC→client. One-sided cuts exercise asymmetric partitions.
    WanPartition {
        /// Cut the External→Dc direction.
        to_dc: bool,
        /// Cut the Dc→External direction.
        to_ext: bool,
    },
    /// Gray failure: slow `node`'s CPU service time by `factor`× for the
    /// window. The node stays alive and keeps answering pings — only its
    /// work gets slow. Stores and backends carry the CPU service-time
    /// models, so they are the valid targets (store brownout is the
    /// headline case).
    NodeSlowdown {
        /// The component to brown out.
        node: GrayTarget,
        /// Service-time multiplier (`10` = answering 10× slower).
        factor: u32,
    },
    /// Gray failure: degrade every link touching `node` — `loss_pct`%
    /// per-packet loss plus up to `jitter_ms` of added seeded delay in
    /// each direction. The node itself is healthy; its network is not.
    LinkDegrade {
        /// The component whose links flap.
        node: GrayTarget,
        /// Per-packet loss percentage (0–100) on the node's links.
        loss_pct: u32,
        /// Upper bound on added per-packet delay (milliseconds).
        jitter_ms: u32,
    },
    /// Gray failure: cut exactly one direction of `node`'s connectivity
    /// (`inbound` = packets to it vanish, otherwise packets from it do).
    /// The half-open connectivity confuses naive health checks: one side
    /// still sees traffic flowing.
    AsymmetricPartition {
        /// The component to half-partition.
        node: GrayTarget,
        /// Cut ingress when `true`, egress when `false`.
        inbound: bool,
    },
}

/// Which component a gray fault degrades. Maps onto the same overlap
/// targets as the crash faults, so a slow store counts against
/// `max_stores_impaired` exactly like a dead one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GrayTarget {
    /// Yoda instance `i`.
    Instance(usize),
    /// Store server `i`.
    Store(usize),
    /// Mux `i`.
    Mux(usize),
    /// Backend server `i`.
    Backend(usize),
}

impl GrayTarget {
    fn target(self) -> Target {
        match self {
            GrayTarget::Instance(i) => Target::Instance(i),
            GrayTarget::Store(i) => Target::Store(i),
            GrayTarget::Mux(i) => Target::Mux(i),
            GrayTarget::Backend(i) => Target::Backend(i),
        }
    }
}

/// What a fault impairs, for overlap accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Instance(usize),
    Store(usize),
    Mux(usize),
    Backend(usize),
    Controller,
    Wan,
}

impl FaultKind {
    fn target(self) -> Target {
        match self {
            FaultKind::InstanceCrash { i } | FaultKind::InstancePartition { i } => {
                Target::Instance(i)
            }
            FaultKind::StoreCrash { i } | FaultKind::StorePartition { i } => Target::Store(i),
            FaultKind::MuxCrash { i } => Target::Mux(i),
            FaultKind::BackendCrash { i } => Target::Backend(i),
            FaultKind::ControllerKill => Target::Controller,
            FaultKind::WanLossBurst { .. }
            | FaultKind::WanLatencySpike { .. }
            | FaultKind::WanPartition { .. } => Target::Wan,
            FaultKind::NodeSlowdown { node, .. }
            | FaultKind::LinkDegrade { node, .. }
            | FaultKind::AsymmetricPartition { node, .. } => node.target(),
        }
    }

    /// Whether this fault can consume a browser retry even with a
    /// perfectly behaving L7 LB. WAN impairments and anything that slows
    /// or breaks the backend/data path for client bytes count; Yoda's own
    /// churn (instances, muxes, stores — crashed, partitioned, slowed, or
    /// lossy) is masked by flow re-steering, TCPStore recovery, hedged
    /// store reads, and degraded-mode admission, and costs nothing.
    /// Exception: packet loss on an instance or mux link sits on the
    /// client byte path itself, which no LB logic can mask.
    fn client_visible(self) -> bool {
        match self {
            FaultKind::LinkDegrade { node, .. } => {
                !matches!(node, GrayTarget::Store(_))
            }
            FaultKind::NodeSlowdown { node, .. } => matches!(node, GrayTarget::Backend(_)),
            FaultKind::AsymmetricPartition { .. } => false,
            _ => matches!(self.target(), Target::Wan | Target::Backend(_)),
        }
    }
}

/// One scheduled fault: injected at `at`, healed/restored at
/// `at + duration` (except [`FaultKind::ControllerKill`], which is
/// permanent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Fault {
    /// Injection time.
    pub at: SimTime,
    /// Impairment duration.
    pub duration: SimTime,
    /// What to break.
    pub kind: FaultKind,
}

impl Fault {
    /// When the fault heals.
    pub fn end(&self) -> SimTime {
        self.at + self.duration
    }

    /// Whether two faults are concurrent (with the safety gap).
    fn overlaps(&self, other: &Fault) -> bool {
        self.at < other.end() + TARGET_GAP && other.at < self.end() + TARGET_GAP
    }
}

/// How many of each component the target testbed has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanShape {
    /// Active Yoda instances.
    pub instances: usize,
    /// TCPStore servers.
    pub stores: usize,
    /// L4 muxes.
    pub muxes: usize,
    /// Backend servers (backend `i` serves service `i % services`).
    pub backends: usize,
    /// Online services.
    pub services: usize,
}

impl PlanShape {
    /// Backends belonging to service `s`.
    fn backends_of_service(&self, s: usize) -> usize {
        if self.services == 0 {
            return 0;
        }
        (0..self.backends).filter(|b| b % self.services == s).count()
    }
}

/// Generation budget: how many faults, and which availability
/// preconditions the schedule must respect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanBudget {
    /// Target number of faults (the generator may fall short when the
    /// constraints reject too many draws; it never exceeds this).
    pub faults: usize,
    /// Maximum faults active at any instant.
    pub max_concurrent: usize,
    /// Floor on live (unimpaired) Yoda instances.
    pub min_live_instances: usize,
    /// Floor on live muxes.
    pub min_live_muxes: usize,
    /// Ceiling on concurrently impaired store servers (replication
    /// factor − 1 keeps every key readable).
    pub max_stores_impaired: usize,
    /// Floor on live backends per service.
    pub min_live_backends_per_service: usize,
    /// Ceiling on *client-visible* faults across the whole plan (WAN
    /// impairments and backend crashes — faults no L7 LB can mask).
    /// Each can consume one browser retry on an unlucky object: a WAN
    /// burst kills the attempt in flight during it (a twice-lost SYN
    /// already exceeds browser patience at the paper's 3 s SYN RTO), and
    /// a backend crash resets the flows pinned to it. Yoda's own churn
    /// (instances, muxes, stores) is masked by flow re-steering and
    /// TCPStore recovery and costs nothing. Zero broken flows is
    /// therefore only guaranteed when this count stays at or below the
    /// browser's retry budget.
    pub max_client_visible: usize,
    /// Whether the controller may be killed (permanently).
    pub allow_controller_kill: bool,
    /// Whether full WAN blackholes may be injected.
    pub allow_wan_partition: bool,
    /// Fault injection window (start times fall inside it).
    pub window: (SimTime, SimTime),
    /// Minimum fault duration.
    pub min_duration: SimTime,
    /// Maximum fault duration.
    pub max_duration: SimTime,
    /// Ceiling on WAN-partition duration (kept far below the browser
    /// timeout in survivable plans).
    pub max_wan_partition: SimTime,
    /// Ceiling on a [`FaultKind::NodeSlowdown`] factor.
    pub max_slowdown_factor: u32,
    /// Ceiling on `factor × duration_secs` for a slowdown — the total
    /// "slowness budget" of one gray fault. Caps the backlog a browned-out
    /// store can accumulate, so survivable runs drain it before the
    /// deadline.
    pub max_slowdown_factor_secs: u64,
    /// Ceiling on [`FaultKind::LinkDegrade`] loss (percent).
    pub max_link_loss_pct: u32,
    /// Ceiling on [`FaultKind::LinkDegrade`] jitter (milliseconds).
    pub max_link_jitter_ms: u32,
    /// Whether the floors above are enforced. Mirrored into
    /// [`ChaosPlan::survivable`].
    pub survivable: bool,
}

impl PlanBudget {
    /// Availability-preserving budget: Yoda's §6 preconditions hold at
    /// every instant of the schedule.
    pub fn survivable() -> Self {
        PlanBudget {
            faults: 5,
            max_concurrent: 2,
            min_live_instances: 1,
            min_live_muxes: 1,
            max_stores_impaired: 1,
            min_live_backends_per_service: 1,
            max_client_visible: 2,
            allow_controller_kill: false,
            allow_wan_partition: true,
            window: (SimTime::from_secs(2), SimTime::from_secs(20)),
            min_duration: SimTime::from_secs(1),
            max_duration: SimTime::from_secs(6),
            max_wan_partition: SimTime::from_secs(2),
            max_slowdown_factor: 10,
            max_slowdown_factor_secs: 60,
            max_link_loss_pct: 30,
            max_link_jitter_ms: 20,
            survivable: true,
        }
    }

    /// No floors: mass failures, permanent controller death, long WAN
    /// blackholes. The run is only expected to degrade gracefully.
    pub fn unconstrained() -> Self {
        PlanBudget {
            faults: 8,
            max_concurrent: 4,
            min_live_instances: 0,
            min_live_muxes: 0,
            max_stores_impaired: usize::MAX,
            min_live_backends_per_service: 0,
            max_client_visible: usize::MAX,
            allow_controller_kill: true,
            allow_wan_partition: true,
            window: (SimTime::from_secs(2), SimTime::from_secs(30)),
            min_duration: SimTime::from_secs(1),
            max_duration: SimTime::from_secs(8),
            max_wan_partition: SimTime::from_secs(5),
            max_slowdown_factor: u32::MAX,
            max_slowdown_factor_secs: u64::MAX,
            max_link_loss_pct: 100,
            max_link_jitter_ms: u32::MAX,
            survivable: false,
        }
    }
}

/// A complete seeded fault schedule, sorted by injection time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The seed the plan (and the run) derives from.
    pub seed: u64,
    /// Whether the generating budget enforced the availability floors.
    pub survivable: bool,
    /// The schedule, sorted by `(at, duration, kind)`.
    pub faults: Vec<Fault>,
}

impl ChaosPlan {
    /// Generates the plan for `seed` by rejection sampling: draw a fault,
    /// keep it only when the budget still admits it next to everything
    /// already accepted. Attempts are bounded, so adversarial budgets
    /// terminate with fewer faults instead of looping.
    pub fn generate(seed: u64, shape: &PlanShape, budget: &PlanBudget) -> ChaosPlan {
        let mut rng = Rng::seed_from_u64(seed ^ 0xC4A0_5EED_0B57_AC1E);
        let mut faults: Vec<Fault> = Vec::new();
        let max_attempts = budget.faults * 64 + 64;
        for _ in 0..max_attempts {
            if faults.len() >= budget.faults {
                break;
            }
            let f = draw(&mut rng, shape, budget);
            if admissible(&faults, &f, shape, budget) {
                faults.push(f);
            }
        }
        faults.sort();
        ChaosPlan {
            seed,
            survivable: budget.survivable,
            faults,
        }
    }

    /// The latest heal/restore instant (controller kills, which never
    /// heal, count at their injection time).
    pub fn last_heal(&self) -> SimTime {
        self.faults
            .iter()
            .map(|f| match f.kind {
                FaultKind::ControllerKill => f.at,
                _ => f.end(),
            })
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Multi-line rendering for failure output: paste the seed back into
    /// the harness and the identical schedule regenerates.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ChaosPlan {{ seed: {}, survivable: {}, faults: {} }}",
            self.seed,
            self.survivable,
            self.faults.len()
        )?;
        for fault in &self.faults {
            writeln!(
                f,
                "  [{:7.3}s +{:.3}s] {:?}",
                fault.at.as_secs_f64(),
                fault.duration.as_secs_f64(),
                fault.kind
            )?;
        }
        Ok(())
    }
}

/// Draws one candidate fault from the weighted kind table.
fn draw(rng: &mut Rng, shape: &PlanShape, budget: &PlanBudget) -> Fault {
    // Class table: each tag repeated by weight. Built the same way every
    // call, so the draw sequence is a pure function of the RNG stream.
    let mut classes: Vec<u8> = Vec::new();
    let mut push = |tag: u8, weight: usize, enabled: bool| {
        if enabled {
            for _ in 0..weight {
                classes.push(tag);
            }
        }
    };
    push(0, 3, shape.instances > 0); // instance crash
    push(1, 2, shape.instances > 0); // instance partition
    push(2, 2, shape.stores > 0); // store crash
    push(3, 2, shape.stores > 0); // store partition
    push(4, 2, shape.muxes > 0); // mux crash
    push(5, 2, shape.backends > 0); // backend crash
    push(6, 1, budget.allow_controller_kill);
    push(7, 2, true); // WAN loss burst
    push(8, 2, true); // WAN latency spike
    push(9, 1, budget.allow_wan_partition);
    push(10, 2, shape.stores > 0 || shape.backends > 0); // node slowdown (gray)
    push(11, 2, shape.instances + shape.stores + shape.muxes > 0); // link degrade (gray)
    push(12, 2, shape.instances > 0 || shape.stores > 0); // asymmetric partition (gray)
    let class = classes
        .get(rng.gen_range(0..classes.len().max(1) as u64) as usize)
        .copied()
        .unwrap_or(7);

    let span = budget.window.1.saturating_sub(budget.window.0).as_micros();
    let at = budget.window.0 + SimTime::from_micros(rng.gen_range(0..=span));
    let dur_span = budget
        .max_duration
        .saturating_sub(budget.min_duration)
        .as_micros();
    let mut duration = budget.min_duration + SimTime::from_micros(rng.gen_range(0..=dur_span));

    let pick = |rng: &mut Rng, n: usize| rng.gen_range(0..n.max(1) as u64) as usize;
    let kind = match class {
        0 => FaultKind::InstanceCrash {
            i: pick(rng, shape.instances),
        },
        1 => FaultKind::InstancePartition {
            i: pick(rng, shape.instances),
        },
        2 => FaultKind::StoreCrash {
            i: pick(rng, shape.stores),
        },
        3 => FaultKind::StorePartition {
            i: pick(rng, shape.stores),
        },
        4 => FaultKind::MuxCrash {
            i: pick(rng, shape.muxes),
        },
        5 => FaultKind::BackendCrash {
            i: pick(rng, shape.backends),
        },
        6 => {
            duration = SimTime::ZERO;
            FaultKind::ControllerKill
        }
        8 => FaultKind::WanLatencySpike {
            extra_ms: 20 + rng.gen_range(0..=80u64) as u32,
        },
        9 => {
            duration = duration.min(budget.max_wan_partition);
            match rng.gen_range(0..3u64) {
                0 => FaultKind::WanPartition {
                    to_dc: true,
                    to_ext: true,
                },
                1 => FaultKind::WanPartition {
                    to_dc: true,
                    to_ext: false,
                },
                _ => FaultKind::WanPartition {
                    to_dc: false,
                    to_ext: true,
                },
            }
        }
        10 => {
            // Stores are the preferred brownout victims (the paper's
            // store tier is the availability-critical dependency);
            // backends take the remaining third.
            let node = if shape.stores > 0 && (shape.backends == 0 || rng.gen_range(0..3u64) < 2)
            {
                GrayTarget::Store(pick(rng, shape.stores))
            } else {
                GrayTarget::Backend(pick(rng, shape.backends))
            };
            // Drawn past the survivable cap on purpose: rejection
            // sampling trims survivable plans to ≤10×, unconstrained
            // plans keep the harsher draws.
            FaultKind::NodeSlowdown {
                node,
                factor: 2 + rng.gen_range(0..=18u64) as u32,
            }
        }
        11 => {
            let node = match rng.gen_range(0..3u64) {
                0 if shape.instances > 0 => GrayTarget::Instance(pick(rng, shape.instances)),
                1 if shape.muxes > 0 => GrayTarget::Mux(pick(rng, shape.muxes)),
                _ if shape.stores > 0 => GrayTarget::Store(pick(rng, shape.stores)),
                _ => GrayTarget::Instance(pick(rng, shape.instances)),
            };
            FaultKind::LinkDegrade {
                node,
                loss_pct: 5 + rng.gen_range(0..=45u64) as u32,
                jitter_ms: 1 + rng.gen_range(0..=29u64) as u32,
            }
        }
        12 => {
            let node = if shape.instances > 0 && (shape.stores == 0 || rng.gen_range(0..2u64) == 0)
            {
                GrayTarget::Instance(pick(rng, shape.instances))
            } else {
                GrayTarget::Store(pick(rng, shape.stores))
            };
            FaultKind::AsymmetricPartition {
                node,
                inbound: rng.gen_range(0..2u64) == 0,
            }
        }
        _ => FaultKind::WanLossBurst {
            loss_pct: 10 + rng.gen_range(0..=40u64) as u32,
        },
    };
    Fault { at, duration, kind }
}

/// Whether `f` can join `existing` without violating the budget.
fn admissible(existing: &[Fault], f: &Fault, shape: &PlanShape, budget: &PlanBudget) -> bool {
    // At most one controller kill per plan, ever.
    if f.kind == FaultKind::ControllerKill
        && existing.iter().any(|e| e.kind == FaultKind::ControllerKill)
    {
        return false;
    }
    let overlapping: Vec<&Fault> = existing.iter().filter(|e| e.overlaps(f)).collect();
    if overlapping.len() + 1 > budget.max_concurrent {
        return false;
    }
    // Never two concurrent faults on one target (this also serialises
    // WAN impairments, which all share the WAN target).
    if overlapping
        .iter()
        .any(|e| e.kind.target() == f.kind.target())
    {
        return false;
    }
    if !budget.survivable {
        return true;
    }
    // Gray-fault intensity caps: a browned-out store must not accumulate
    // more backlog than the run can drain, and degraded links must stay
    // inside what TCP retransmission + hedged store ops absorb.
    match f.kind {
        FaultKind::NodeSlowdown { factor, .. } => {
            if factor > budget.max_slowdown_factor {
                return false;
            }
            let factor_secs = u64::from(factor).saturating_mul(f.duration.as_micros())
                / 1_000_000;
            if factor_secs > budget.max_slowdown_factor_secs {
                return false;
            }
        }
        FaultKind::LinkDegrade {
            loss_pct,
            jitter_ms,
            ..
        } => {
            if loss_pct > budget.max_link_loss_pct || jitter_ms > budget.max_link_jitter_ms {
                return false;
            }
        }
        _ => {}
    }
    // Client-visible faults are capped over the *whole plan*, not just
    // the overlap window: one object's attempts can span distant faults
    // (a 10 s timeout, then a retry into the next burst), so every such
    // fault potentially consumes a retry of the same unlucky object.
    if f.kind.client_visible() {
        let already = existing.iter().filter(|e| e.kind.client_visible()).count();
        if already + 1 > budget.max_client_visible {
            return false;
        }
    }
    let count = |t: fn(Target) -> bool| {
        overlapping
            .iter()
            .map(|e| e.kind.target())
            .chain([f.kind.target()])
            .filter(|&tg| t(tg))
            .count()
    };
    let instances_down = count(|t| matches!(t, Target::Instance(_)));
    if shape.instances < budget.min_live_instances + instances_down {
        return false;
    }
    let stores_down = count(|t| matches!(t, Target::Store(_)));
    if stores_down > budget.max_stores_impaired {
        return false;
    }
    let muxes_down = count(|t| matches!(t, Target::Mux(_)));
    if shape.muxes < budget.min_live_muxes + muxes_down {
        return false;
    }
    for s in 0..shape.services {
        let down = overlapping
            .iter()
            .map(|e| e.kind.target())
            .chain([f.kind.target()])
            .filter(|tg| matches!(tg, Target::Backend(b) if b % shape.services == s))
            .count();
        if shape.backends_of_service(s) < budget.min_live_backends_per_service + down {
            return false;
        }
    }
    // WAN partitions must stay far below the browser timeout.
    if matches!(f.kind, FaultKind::WanPartition { .. }) && f.duration > budget.max_wan_partition {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> PlanShape {
        PlanShape {
            instances: 3,
            stores: 3,
            muxes: 2,
            backends: 4,
            services: 2,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = shape();
        for seed in 0..32 {
            let a = ChaosPlan::generate(seed, &s, &PlanBudget::survivable());
            let b = ChaosPlan::generate(seed, &s, &PlanBudget::survivable());
            assert_eq!(a, b, "seed {seed} regenerated differently");
            let c = ChaosPlan::generate(seed, &s, &PlanBudget::unconstrained());
            let d = ChaosPlan::generate(seed, &s, &PlanBudget::unconstrained());
            assert_eq!(c, d);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let s = shape();
        let a = ChaosPlan::generate(1, &s, &PlanBudget::survivable());
        let b = ChaosPlan::generate(2, &s, &PlanBudget::survivable());
        assert_ne!(a.faults, b.faults);
    }

    #[test]
    fn plans_are_sorted_and_inside_the_window() {
        let s = shape();
        let budget = PlanBudget::survivable();
        for seed in 0..64 {
            let plan = ChaosPlan::generate(seed, &s, &budget);
            assert!(!plan.faults.is_empty(), "seed {seed} produced no faults");
            for w in plan.faults.windows(2) {
                assert!(w[0].at <= w[1].at);
            }
            for f in &plan.faults {
                assert!(f.at >= budget.window.0 && f.at <= budget.window.1);
            }
        }
    }

    /// Independent re-check of the availability floors at every fault
    /// boundary (the generator's own accounting is not trusted here).
    #[test]
    fn survivable_plans_respect_floors() {
        let s = shape();
        let budget = PlanBudget::survivable();
        for seed in 0..64 {
            let plan = ChaosPlan::generate(seed, &s, &budget);
            assert!(plan.survivable);
            for f in &plan.faults {
                assert_ne!(f.kind, FaultKind::ControllerKill);
                // The impaired set only changes at fault starts, so
                // checking occupancy at each start instant is exhaustive.
                let t = f.at;
                let live = |pred: &dyn Fn(Target) -> bool| {
                    plan.faults
                        .iter()
                        .filter(|e| e.at <= t && t <= e.end() && pred(e.kind.target()))
                        .count()
                };
                let inst = live(&|t| matches!(t, Target::Instance(_)));
                assert!(s.instances - inst >= budget.min_live_instances, "seed {seed}");
                let stores = live(&|t| matches!(t, Target::Store(_)));
                assert!(stores <= budget.max_stores_impaired, "seed {seed}");
                let muxes = live(&|t| matches!(t, Target::Mux(_)));
                assert!(s.muxes - muxes >= budget.min_live_muxes, "seed {seed}");
                assert!(live(&|t| t == Target::Wan) <= 1, "seed {seed}: WAN overlap");
                if let FaultKind::WanPartition { .. } = f.kind {
                    assert!(f.duration <= budget.max_wan_partition, "seed {seed}");
                }
            }
            // Client-visible faults never exceed the browser retry
            // budget over the whole plan.
            let visible = plan
                .faults
                .iter()
                .filter(|f| f.kind.client_visible())
                .count();
            assert!(
                visible <= budget.max_client_visible,
                "seed {seed}: {visible} client-visible faults"
            );
        }
    }

    /// Survivable gray faults stay inside the intensity caps: slowdown
    /// factor, slowness budget (factor × seconds), link loss, and jitter.
    #[test]
    fn survivable_gray_faults_respect_intensity_caps() {
        let s = shape();
        let budget = PlanBudget::survivable();
        let mut saw_gray = false;
        for seed in 0..256 {
            let plan = ChaosPlan::generate(seed, &s, &budget);
            for f in &plan.faults {
                match f.kind {
                    FaultKind::NodeSlowdown { factor, .. } => {
                        saw_gray = true;
                        assert!(factor <= budget.max_slowdown_factor, "seed {seed}");
                        let factor_secs =
                            u64::from(factor) * f.duration.as_micros() / 1_000_000;
                        assert!(
                            factor_secs <= budget.max_slowdown_factor_secs,
                            "seed {seed}: slowness budget {factor_secs}"
                        );
                    }
                    FaultKind::LinkDegrade {
                        loss_pct,
                        jitter_ms,
                        ..
                    } => {
                        saw_gray = true;
                        assert!(loss_pct <= budget.max_link_loss_pct, "seed {seed}");
                        assert!(jitter_ms <= budget.max_link_jitter_ms, "seed {seed}");
                    }
                    FaultKind::AsymmetricPartition { .. } => saw_gray = true,
                    _ => {}
                }
            }
        }
        assert!(saw_gray, "no survivable seed in 0..256 drew a gray fault");
    }

    /// Unconstrained budgets admit slowdowns past the survivable cap
    /// (the generator draws up to 20×; survivable trims to ≤10×).
    #[test]
    fn unconstrained_plans_draw_harsher_gray_faults() {
        let s = shape();
        let hit = (0..256).any(|seed| {
            ChaosPlan::generate(seed, &s, &PlanBudget::unconstrained())
                .faults
                .iter()
                .any(|f| matches!(f.kind, FaultKind::NodeSlowdown { factor, .. } if factor > 10))
        });
        assert!(hit, "no unconstrained seed in 0..256 drew a >10x slowdown");
    }

    #[test]
    fn unconstrained_plans_eventually_kill_the_controller() {
        let s = shape();
        let hit = (0..32).any(|seed| {
            ChaosPlan::generate(seed, &s, &PlanBudget::unconstrained())
                .faults
                .iter()
                .any(|f| f.kind == FaultKind::ControllerKill)
        });
        assert!(hit, "no unconstrained seed in 0..32 drew a controller kill");
    }

    #[test]
    fn render_names_the_seed() {
        let plan = ChaosPlan::generate(7, &shape(), &PlanBudget::survivable());
        let text = plan.render();
        assert!(text.contains("seed: 7"));
        assert!(text.lines().count() == plan.faults.len() + 1);
    }
}
