//! RFC 793 sequence-number arithmetic.
//!
//! TCP sequence numbers live on a modulo-2³² circle; comparisons are only
//! meaningful between numbers less than 2³¹ apart. Yoda's tunneling phase
//! is built on exactly this arithmetic: a fixed offset `C − S` between the
//! client-side and server-side sequence spaces is added/subtracted on every
//! forwarded segment (paper Figure 4), and it must compose correctly across
//! the wrap point.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A TCP sequence number with wrapping arithmetic.
///
/// # Examples
///
/// ```
/// use yoda_tcp::SeqNum;
///
/// let near_wrap = SeqNum::new(u32::MAX - 1);
/// let after = near_wrap + 3;
/// assert_eq!(after, SeqNum::new(1));
/// assert!(near_wrap.lt(after));
/// assert_eq!(after - near_wrap, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(u32);

impl SeqNum {
    /// Wraps a raw `u32` as a sequence number.
    pub const fn new(v: u32) -> Self {
        SeqNum(v)
    }

    /// The raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Modular "less than": true when `self` is before `other` on the
    /// sequence circle (forward distance in (0, 2³¹)). Numbers exactly
    /// 2³¹ apart are unordered (RFC 1982's undefined case): comparing
    /// them is false in *both* directions, keeping `lt` asymmetric
    /// instead of claiming each precedes the other.
    pub fn lt(self, other: SeqNum) -> bool {
        let forward = other.0.wrapping_sub(self.0);
        forward != 0 && forward < 1 << 31
    }

    /// Modular "less than or equal".
    pub fn le(self, other: SeqNum) -> bool {
        self == other || self.lt(other)
    }

    /// Modular "greater than".
    pub fn gt(self, other: SeqNum) -> bool {
        other.lt(self)
    }

    /// Modular "greater than or equal".
    pub fn ge(self, other: SeqNum) -> bool {
        other.le(self)
    }

    /// True when `self ∈ [lo, hi)` on the circle.
    pub fn in_range(self, lo: SeqNum, hi: SeqNum) -> bool {
        lo.le(self) && self.lt(hi)
    }

    /// Returns the signed translation offset that maps `from`-space numbers
    /// into `self`-space: `translate = x + self.offset_from(from)`.
    ///
    /// This is Yoda's `C − S` (client ISN minus server ISN).
    pub fn offset_from(self, from: SeqNum) -> u32 {
        self.0.wrapping_sub(from.0)
    }

    /// Applies a translation offset produced by [`SeqNum::offset_from`].
    pub fn translate(self, offset: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(offset))
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;

    fn add(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(rhs))
    }
}

impl AddAssign<u32> for SeqNum {
    fn add_assign(&mut self, rhs: u32) {
        self.0 = self.0.wrapping_add(rhs);
    }
}

impl Sub for SeqNum {
    type Output = u32;

    /// Distance from `rhs` forward to `self` on the circle.
    fn sub(self, rhs: SeqNum) -> u32 {
        self.0.wrapping_sub(rhs.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for SeqNum {
    fn from(v: u32) -> Self {
        SeqNum(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_across_wrap() {
        let a = SeqNum::new(u32::MAX - 10);
        let b = SeqNum::new(5);
        assert!(a.lt(b));
        assert!(b.gt(a));
        assert!(a.le(a));
        assert!(a.ge(a));
        assert!(!b.lt(a));
    }

    #[test]
    fn in_range_wrapping_window() {
        let lo = SeqNum::new(u32::MAX - 2);
        let hi = SeqNum::new(3);
        assert!(SeqNum::new(u32::MAX).in_range(lo, hi));
        assert!(SeqNum::new(0).in_range(lo, hi));
        assert!(SeqNum::new(2).in_range(lo, hi));
        assert!(!SeqNum::new(3).in_range(lo, hi));
        assert!(!SeqNum::new(100).in_range(lo, hi));
    }

    #[test]
    fn translation_is_bijective() {
        // Yoda rewrites server seq S-space -> client C-space with offset
        // C - S, and client acks C-space -> S-space with the negated offset.
        let c = SeqNum::new(0xDEAD_BEEF);
        let s = SeqNum::new(0x0000_1234);
        let c_from_s = c.offset_from(s);
        let s_from_c = s.offset_from(c);
        let x = SeqNum::new(0x0000_2000); // some server-space seq
        assert_eq!(x.translate(c_from_s).translate(s_from_c), x);
    }

    #[test]
    fn distance_subtraction() {
        assert_eq!(SeqNum::new(10) - SeqNum::new(3), 7);
        assert_eq!(SeqNum::new(2) - SeqNum::new(u32::MAX), 3);
    }

    #[test]
    fn add_wraps() {
        let mut s = SeqNum::new(u32::MAX);
        s += 2;
        assert_eq!(s, SeqNum::new(1));
        assert_eq!(SeqNum::new(u32::MAX) + 1, SeqNum::new(0));
    }
}
