//! TCP segments and their wire format.
//!
//! Segments ride inside [`Packet`] payloads with
//! protocol `PROTO_TCP`. The wire format is a
//! simplified fixed 21-byte header (no options) followed by the payload;
//! keeping an explicit byte encoding (rather than passing structs around)
//! is what lets Yoda's flow-state records store and replay *actual packet
//! headers*, as the paper's TCPStore does.

use bytes::{BufMut, Bytes, BytesMut};
use yoda_netsim::{Endpoint, Packet, PROTO_TCP};

use crate::seq::SeqNum;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Flags {
    /// Synchronize sequence numbers.
    pub syn: bool,
    /// Acknowledgement field significant.
    pub ack: bool,
    /// No more data from sender.
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Push function.
    pub psh: bool,
}

impl Flags {
    /// SYN only.
    pub const SYN: Flags = Flags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };
    /// SYN+ACK.
    pub const SYN_ACK: Flags = Flags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// ACK only.
    pub const ACK: Flags = Flags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// FIN+ACK.
    pub const FIN_ACK: Flags = Flags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
        psh: false,
    };
    /// RST only.
    pub const RST: Flags = Flags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
        psh: false,
    };

    fn to_byte(self) -> u8 {
        (self.syn as u8)
            | ((self.ack as u8) << 1)
            | ((self.fin as u8) << 2)
            | ((self.rst as u8) << 3)
            | ((self.psh as u8) << 4)
    }

    fn from_byte(b: u8) -> Flags {
        Flags {
            syn: b & 1 != 0,
            ack: b & 2 != 0,
            fin: b & 4 != 0,
            rst: b & 8 != 0,
            psh: b & 16 != 0,
        }
    }
}

impl std::fmt::Display for Flags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if self.syn {
            parts.push("SYN");
        }
        if self.fin {
            parts.push("FIN");
        }
        if self.rst {
            parts.push("RST");
        }
        if self.psh {
            parts.push("PSH");
        }
        if self.ack {
            parts.push("ACK");
        }
        write!(f, "{}", if parts.is_empty() { "." } else { "" })?;
        write!(f, "{}", parts.join("+"))
    }
}

/// A TCP segment (header + payload).
///
/// # Examples
///
/// ```
/// use yoda_tcp::{Segment, Flags, SeqNum};
/// use bytes::Bytes;
///
/// let seg = Segment {
///     src_port: 40000,
///     dst_port: 80,
///     seq: SeqNum::new(1000),
///     ack: SeqNum::new(0),
///     flags: Flags::SYN,
///     window: 65535,
///     payload: Bytes::new(),
/// };
/// let decoded = Segment::decode(seg.encode()).unwrap();
/// assert_eq!(decoded, seg);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: SeqNum,
    /// Acknowledgement number (next expected byte), valid when `flags.ack`.
    pub ack: SeqNum,
    /// Control flags.
    pub flags: Flags,
    /// Advertised receive window (32-bit: our wire format has no window
    /// scaling option, so the field is wide enough natively).
    pub window: u32,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Size of the encoded segment header.
pub const SEGMENT_HEADER_LEN: usize = 21;

impl Segment {
    /// Sequence-space length: payload bytes plus one for SYN and FIN.
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + self.flags.syn as u32 + self.flags.fin as u32
    }

    /// The sequence number just past this segment.
    pub fn seq_end(&self) -> SeqNum {
        self.seq + self.seq_len()
    }

    /// Encodes the segment to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(SEGMENT_HEADER_LEN + self.payload.len());
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u32(self.seq.raw());
        buf.put_u32(self.ack.raw());
        buf.put_u8(self.flags.to_byte());
        buf.put_u32(self.window);
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Decodes a segment; `None` on truncation or length mismatch.
    pub fn decode(b: Bytes) -> Option<Segment> {
        let len = u32::from_be_bytes(bytes::array_at::<4>(&b, 17)?) as usize;
        if b.len() != SEGMENT_HEADER_LEN + len {
            return None;
        }
        Some(Segment {
            src_port: u16::from_be_bytes(bytes::array_at::<2>(&b, 0)?),
            dst_port: u16::from_be_bytes(bytes::array_at::<2>(&b, 2)?),
            seq: SeqNum::new(u32::from_be_bytes(bytes::array_at::<4>(&b, 4)?)),
            ack: SeqNum::new(u32::from_be_bytes(bytes::array_at::<4>(&b, 8)?)),
            flags: Flags::from_byte(*b.get(12)?),
            window: u32::from_be_bytes(bytes::array_at::<4>(&b, 13)?),
            payload: b.slice(SEGMENT_HEADER_LEN..),
        })
    }

    /// Wraps this segment in a network packet from `src` to `dst`.
    ///
    /// The endpoint ports override the segment's ports (they must agree;
    /// debug builds assert it).
    pub fn into_packet(self, src: Endpoint, dst: Endpoint) -> Packet {
        debug_assert_eq!(self.src_port, src.port, "src port mismatch");
        debug_assert_eq!(self.dst_port, dst.port, "dst port mismatch");
        Packet::new(src, dst, PROTO_TCP, self.encode())
    }

    /// Extracts a segment from a TCP packet; `None` for other protocols or
    /// malformed payloads.
    pub fn from_packet(pkt: &Packet) -> Option<Segment> {
        if pkt.protocol != PROTO_TCP {
            return None;
        }
        Segment::decode(pkt.payload.clone())
    }

    /// Reads just the flag byte of a TCP packet without decoding the whole
    /// segment (the mux fast path classifies FIN/RST this way); `None` for
    /// other protocols or payloads too short to hold a header.
    pub fn peek_flags(pkt: &Packet) -> Option<Flags> {
        if pkt.protocol != PROTO_TCP || pkt.payload.len() < SEGMENT_HEADER_LEN {
            return None;
        }
        Some(Flags::from_byte(*pkt.payload.get(12)?))
    }

    /// Short human-readable summary for traces, tcpdump-style.
    pub fn summary(&self) -> String {
        format!(
            "{} seq={} ack={} len={}",
            self.flags,
            self.seq,
            self.ack,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yoda_netsim::Addr;

    fn seg(flags: Flags, payload: &'static [u8]) -> Segment {
        Segment {
            src_port: 1234,
            dst_port: 80,
            seq: SeqNum::new(7),
            ack: SeqNum::new(9),
            flags,
            window: 4096,
            payload: Bytes::from_static(payload),
        }
    }

    #[test]
    fn flags_roundtrip_all_combinations() {
        for bits in 0..32u8 {
            let f = Flags::from_byte(bits);
            assert_eq!(f.to_byte(), bits);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = seg(Flags::SYN_ACK, b"hello");
        assert_eq!(Segment::decode(s.encode()).unwrap(), s);
    }

    #[test]
    fn decode_rejects_bad_lengths() {
        let enc = seg(Flags::ACK, b"abc").encode();
        assert!(Segment::decode(enc.slice(0..10)).is_none());
        assert!(Segment::decode(enc.slice(0..enc.len() - 1)).is_none());
        let mut extended = enc.to_vec();
        extended.push(0);
        assert!(Segment::decode(Bytes::from(extended)).is_none());
    }

    #[test]
    fn seq_len_counts_syn_fin() {
        assert_eq!(seg(Flags::SYN, b"").seq_len(), 1);
        assert_eq!(seg(Flags::FIN_ACK, b"xy").seq_len(), 3);
        assert_eq!(seg(Flags::ACK, b"xyz").seq_len(), 3);
        assert_eq!(seg(Flags::ACK, b"ab").seq_end(), SeqNum::new(9));
    }

    #[test]
    fn packet_roundtrip() {
        let s = seg(Flags::ACK, b"data");
        let src = Endpoint::new(Addr::new(1, 1, 1, 1), 1234);
        let dst = Endpoint::new(Addr::new(2, 2, 2, 2), 80);
        let pkt = s.clone().into_packet(src, dst);
        assert_eq!(Segment::from_packet(&pkt).unwrap(), s);
    }

    #[test]
    fn from_packet_rejects_non_tcp() {
        let src = Endpoint::new(Addr::new(1, 1, 1, 1), 0);
        let pkt = Packet::new(src, src, yoda_netsim::PROTO_PING, Bytes::new());
        assert!(Segment::from_packet(&pkt).is_none());
    }

    #[test]
    fn peek_flags_matches_decode() {
        let src = Endpoint::new(Addr::new(1, 1, 1, 1), 1234);
        let dst = Endpoint::new(Addr::new(2, 2, 2, 2), 80);
        let pkt = seg(Flags::FIN_ACK, b"tail").into_packet(src, dst);
        assert_eq!(Segment::peek_flags(&pkt).unwrap(), Flags::FIN_ACK);
        let short = Packet::new(src, dst, PROTO_TCP, Bytes::from_static(b"x"));
        assert!(Segment::peek_flags(&short).is_none());
        let ping = Packet::new(src, dst, yoda_netsim::PROTO_PING, Bytes::new());
        assert!(Segment::peek_flags(&ping).is_none());
    }

    #[test]
    fn summary_mentions_flags() {
        let text = seg(Flags::SYN_ACK, b"").summary();
        assert!(text.contains("SYN+ACK"), "{text}");
    }
}
