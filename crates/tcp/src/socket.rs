//! A sans-IO TCP endpoint state machine.
//!
//! [`TcpSocket`] implements the RFC 793 connection lifecycle with the
//! subset of congestion/loss machinery the paper's experiments exercise:
//!
//! * three-way handshake with caller-supplied ISNs (Yoda derives its
//!   SYN-ACK ISN from a hash of the client endpoint, and reuses the client
//!   ISN toward the backend — both need ISN control),
//! * cumulative ACKs, out-of-order reassembly, duplicate suppression,
//! * retransmission with RTT estimation (Jacobson) and exponential backoff;
//!   minimum data RTO 300 ms, SYN RTO 3 s (paper §4.2, Fig. 12b),
//! * fast retransmit on three duplicate ACKs,
//! * slow start / congestion avoidance (NewReno-lite),
//! * FIN teardown with an abbreviated TIME-WAIT.
//!
//! The socket never performs IO: callers feed it segments and timer
//! expirations and transmit whatever it returns.

use std::collections::BTreeMap;

use bytes::{Bytes, BytesMut};
use yoda_netsim::{Endpoint, SimTime};

use crate::segment::{Flags, Segment};
use crate::seq::SeqNum;

/// Tunables for a socket.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: usize,
    /// Initial congestion window, in segments (RFC 6928 uses 10).
    pub initial_cwnd_segments: u32,
    /// Receive window advertised to the peer, in bytes.
    pub recv_window: u32,
    /// Minimum (and initial) retransmission timeout for data.
    pub min_rto: SimTime,
    /// Maximum retransmission timeout after backoff.
    pub max_rto: SimTime,
    /// Initial retransmission timeout for SYN / SYN-ACK ("3 sec in
    /// Ubuntu", paper §4.2).
    pub syn_rto: SimTime,
    /// Give up (reset) after this many consecutive retransmissions.
    pub max_retries: u32,
    /// How long to linger in TIME-WAIT (abbreviated; real stacks use 2MSL).
    pub time_wait: SimTime,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            initial_cwnd_segments: 10,
            recv_window: 1 << 20,
            min_rto: SimTime::from_millis(300),
            max_rto: SimTime::from_secs(60),
            syn_rto: SimTime::from_secs(3),
            max_retries: 10,
            time_wait: SimTime::from_secs(1),
        }
    }
}

/// Connection state (RFC 793 names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketState {
    /// SYN sent, waiting for SYN-ACK.
    SynSent,
    /// SYN received and SYN-ACK sent, waiting for the final ACK.
    SynReceived,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, not yet acked.
    FinWait1,
    /// Our FIN acked; waiting for the peer's FIN.
    FinWait2,
    /// Both sides sent FIN simultaneously; waiting for FIN ack.
    Closing,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Peer closed, then we sent FIN; waiting for its ack.
    LastAck,
    /// Connection done; lingering to absorb stray segments.
    TimeWait,
    /// Fully closed.
    Closed,
    /// Aborted by RST or retry exhaustion.
    Reset,
}

impl SocketState {
    /// True for states where the connection has been fully torn down.
    pub fn is_terminal(self) -> bool {
        matches!(self, SocketState::Closed | SocketState::Reset)
    }
}

/// A single TCP connection endpoint.
///
/// # Examples
///
/// Loopback handshake between two sockets:
///
/// ```
/// use yoda_netsim::{Addr, Endpoint, SimTime};
/// use yoda_tcp::{TcpSocket, TcpConfig, SeqNum, SocketState};
///
/// let cfg = TcpConfig::default();
/// let a_ep = Endpoint::new(Addr::new(10, 0, 0, 1), 1000);
/// let b_ep = Endpoint::new(Addr::new(10, 0, 0, 2), 80);
/// let t = SimTime::ZERO;
///
/// let (mut a, syn) = TcpSocket::connect(cfg, a_ep, b_ep, SeqNum::new(100), t);
/// let (mut b, synack) = TcpSocket::accept(cfg, b_ep, a_ep, &syn, SeqNum::new(900), t).unwrap();
/// let acks = a.on_segment(&synack, t);
/// assert_eq!(a.state(), SocketState::Established);
/// for s in &acks {
///     b.on_segment(s, t);
/// }
/// assert_eq!(b.state(), SocketState::Established);
/// ```
#[derive(Debug, Clone)]
pub struct TcpSocket {
    cfg: TcpConfig,
    state: SocketState,
    local: Endpoint,
    remote: Endpoint,

    // Send side.
    iss: SeqNum,
    snd_una: SeqNum,
    snd_nxt: SeqNum,
    /// Bytes in [data_base, data_base+unacked.len()): sent-but-unacked
    /// followed by queued-unsent data. `data_base` is the seq of
    /// `unacked[0]`.
    unacked: BytesMut,
    data_base: SeqNum,
    fin_queued: bool,
    fin_sent: bool,
    peer_window: u32,

    // Congestion control.
    cwnd: u32,
    ssthresh: u32,
    dup_acks: u32,

    // RTO machinery.
    srtt: Option<SimTime>,
    rttvar: SimTime,
    rto: SimTime,
    retries: u32,
    rtx_deadline: Option<SimTime>,
    /// Outstanding RTT measurement: (segment end seq, send time). Karn's
    /// rule: invalidated on retransmission.
    rtt_probe: Option<(SeqNum, SimTime)>,
    /// `snd_nxt` at the last RTO (NewReno-style recovery point). While
    /// `snd_una` is below it, every fresh ACK retransmits the next head
    /// immediately instead of waiting out the backed-off RTO.
    recover: Option<SeqNum>,

    // Receive side.
    irs: SeqNum,
    rcv_nxt: SeqNum,
    assembled: BytesMut,
    out_of_order: BTreeMap<u32, Bytes>,
    peer_fin: Option<SeqNum>,
    time_wait_deadline: Option<SimTime>,

    // Counters for experiments.
    retransmitted_segments: u64,
    delivered_bytes: u64,
}

impl TcpSocket {
    /// Starts an active open: returns the socket in `SynSent` plus the SYN
    /// segment to transmit.
    pub fn connect(
        cfg: TcpConfig,
        local: Endpoint,
        remote: Endpoint,
        iss: SeqNum,
        now: SimTime,
    ) -> (TcpSocket, Segment) {
        let mut sock = TcpSocket::blank(cfg, local, remote, iss);
        sock.state = SocketState::SynSent;
        sock.snd_nxt = iss + 1;
        sock.rto = cfg.syn_rto;
        sock.rtx_deadline = Some(now + cfg.syn_rto);
        let syn = sock.make_segment(iss, Flags::SYN, Bytes::new());
        (sock, syn)
    }

    /// Completes a passive open for a received SYN: returns the socket in
    /// `SynReceived` plus the SYN-ACK to transmit. The caller supplies the
    /// SYN-ACK ISN (`iss`) — Yoda derives it deterministically.
    ///
    /// Returns `None` when `syn` is not a pure SYN.
    pub fn accept(
        cfg: TcpConfig,
        local: Endpoint,
        remote: Endpoint,
        syn: &Segment,
        iss: SeqNum,
        now: SimTime,
    ) -> Option<(TcpSocket, Segment)> {
        if !syn.flags.syn || syn.flags.ack || syn.flags.rst {
            return None;
        }
        let mut sock = TcpSocket::blank(cfg, local, remote, iss);
        sock.state = SocketState::SynReceived;
        sock.snd_nxt = iss + 1;
        sock.irs = syn.seq;
        sock.rcv_nxt = syn.seq + 1;
        sock.peer_window = syn.window;
        sock.rto = cfg.syn_rto;
        sock.rtx_deadline = Some(now + cfg.syn_rto);
        let synack = sock.make_segment(iss, Flags::SYN_ACK, Bytes::new());
        Some((sock, synack))
    }

    fn blank(cfg: TcpConfig, local: Endpoint, remote: Endpoint, iss: SeqNum) -> TcpSocket {
        TcpSocket {
            cfg,
            state: SocketState::Closed,
            local,
            remote,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            unacked: BytesMut::new(),
            data_base: iss + 1,
            fin_queued: false,
            fin_sent: false,
            peer_window: cfg.recv_window,
            cwnd: cfg.initial_cwnd_segments * cfg.mss as u32,
            ssthresh: u32::MAX,
            dup_acks: 0,
            srtt: None,
            rttvar: SimTime::ZERO,
            rto: cfg.min_rto,
            retries: 0,
            rtx_deadline: None,
            rtt_probe: None,
            recover: None,
            irs: SeqNum::new(0),
            rcv_nxt: SeqNum::new(0),
            assembled: BytesMut::new(),
            out_of_order: BTreeMap::new(),
            peer_fin: None,
            time_wait_deadline: None,
            retransmitted_segments: 0,
            delivered_bytes: 0,
        }
    }

    fn make_segment(&self, seq: SeqNum, flags: Flags, payload: Bytes) -> Segment {
        Segment {
            src_port: self.local.port,
            dst_port: self.remote.port,
            seq,
            ack: if flags.ack { self.rcv_nxt } else { SeqNum::new(0) },
            flags,
            window: self.cfg.recv_window,
            payload,
        }
    }

    /// Current state.
    pub fn state(&self) -> SocketState {
        self.state
    }

    /// Local endpoint.
    pub fn local(&self) -> Endpoint {
        self.local
    }

    /// Remote endpoint.
    pub fn remote(&self) -> Endpoint {
        self.remote
    }

    /// Our initial send sequence number.
    pub fn iss(&self) -> SeqNum {
        self.iss
    }

    /// The peer's initial sequence number (valid once connected).
    pub fn irs(&self) -> SeqNum {
        self.irs
    }

    /// Total segments this socket retransmitted.
    pub fn retransmitted_segments(&self) -> u64 {
        self.retransmitted_segments
    }

    /// Total in-order payload bytes delivered to the application.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// True once the peer's FIN has been fully received.
    pub fn peer_closed(&self) -> bool {
        self.peer_fin.map(|f| self.rcv_nxt.gt(f)).unwrap_or(false)
    }

    /// Bytes queued or in flight that the peer has not acknowledged.
    pub fn bytes_outstanding(&self) -> usize {
        self.unacked.len()
    }

    /// Drains and returns data received in order.
    pub fn take_data(&mut self) -> Bytes {
        self.assembled.split().freeze()
    }

    /// Queues application data and returns any segments transmittable now.
    ///
    /// Data queued after [`TcpSocket::close`] is discarded (the send side
    /// is shut).
    pub fn send(&mut self, data: &[u8], now: SimTime) -> Vec<Segment> {
        if self.fin_queued
            || matches!(
                self.state,
                SocketState::FinWait1
                    | SocketState::FinWait2
                    | SocketState::Closing
                    | SocketState::LastAck
                    | SocketState::TimeWait
                    | SocketState::Closed
                    | SocketState::Reset
            )
        {
            return Vec::new();
        }
        self.unacked.extend_from_slice(data);
        self.transmit_window(now)
    }

    /// Initiates an orderly close; returns segments (possibly a FIN) to
    /// transmit. The FIN waits behind any queued data.
    pub fn close(&mut self, now: SimTime) -> Vec<Segment> {
        if self.fin_queued || self.state.is_terminal() {
            return Vec::new();
        }
        self.fin_queued = true;
        self.transmit_window(now)
    }

    /// Aborts the connection, returning the RST to transmit.
    pub fn abort(&mut self) -> Segment {
        self.state = SocketState::Reset;
        self.rtx_deadline = None;
        self.make_segment(self.snd_nxt, Flags::RST, Bytes::new())
    }

    /// The earliest time at which [`TcpSocket::on_timer`] should be called.
    pub fn next_deadline(&self) -> Option<SimTime> {
        match (self.rtx_deadline, self.time_wait_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Handles timer expiry: retransmits, backs off, finishes TIME-WAIT.
    pub fn on_timer(&mut self, now: SimTime) -> Vec<Segment> {
        if let Some(tw) = self.time_wait_deadline {
            if now >= tw {
                self.time_wait_deadline = None;
                if self.state == SocketState::TimeWait {
                    self.state = SocketState::Closed;
                }
            }
        }
        let deadline = match self.rtx_deadline {
            Some(d) if now >= d => d,
            _ => return Vec::new(),
        };
        let _ = deadline;
        self.retries += 1;
        if self.retries > self.cfg.max_retries {
            self.state = SocketState::Reset;
            self.rtx_deadline = None;
            return Vec::new();
        }
        // Karn: outstanding RTT samples are invalid after a retransmission.
        self.rtt_probe = None;
        // Back off and collapse the window (RFC 5681 on RTO).
        let inflight = self.inflight_bytes();
        self.ssthresh = (inflight / 2).max(2 * self.cfg.mss as u32);
        self.cwnd = self.cfg.mss as u32;
        self.dup_acks = 0;
        self.rto = SimTime::from_micros(
            (self.rto.as_micros() * 2).min(self.cfg.max_rto.as_micros()),
        );
        self.rtx_deadline = Some(now + self.rto);
        self.retransmitted_segments += 1;
        match self.state {
            SocketState::SynSent => {
                vec![self.make_segment(self.iss, Flags::SYN, Bytes::new())]
            }
            SocketState::SynReceived => {
                vec![self.make_segment(self.iss, Flags::SYN_ACK, Bytes::new())]
            }
            _ => {
                // Everything in flight is presumed lost; fresh ACKs below
                // this point drive go-back-N retransmission (see
                // `process_ack`).
                self.recover = Some(self.snd_nxt);
                self.retransmit_head()
            }
        }
    }

    /// Returns the first unacked chunk for retransmission (go-back-1 MSS;
    /// the rest follows via normal ACK clocking).
    fn retransmit_head(&mut self) -> Vec<Segment> {
        let inflight = self.inflight_bytes() as usize;
        if inflight == 0 {
            if self.fin_sent && self.snd_una.lt(self.snd_nxt) {
                // Only the FIN is outstanding; its seq is snd_nxt - 1.
                let fin_seq = SeqNum::new(self.snd_nxt.raw().wrapping_sub(1));
                return vec![self.make_segment(fin_seq, Flags::FIN_ACK, Bytes::new())];
            }
            return Vec::new();
        }
        let off = (self.snd_una - self.data_base) as usize;
        let len = inflight.min(self.cfg.mss);
        let Some(window) = self.unacked.get(off..off + len) else {
            // Accounting drift between snd_una and the buffer; nothing
            // sane to retransmit, recover via ACK clocking instead.
            return Vec::new();
        };
        let chunk = Bytes::copy_from_slice(window);
        vec![self.make_segment(self.snd_una, Flags::ACK, chunk)]
    }

    fn inflight_bytes(&self) -> u32 {
        // Data bytes between snd_una and snd_nxt (excluding SYN/FIN).
        let mut inflight = self.snd_nxt - self.snd_una;
        if self.state == SocketState::SynSent || self.state == SocketState::SynReceived {
            inflight = inflight.saturating_sub(1);
        }
        if self.fin_sent {
            inflight = inflight.saturating_sub(1);
        }
        inflight
    }

    /// Sends as much queued data as the congestion and peer windows allow;
    /// appends the FIN when everything is flushed and close was requested.
    fn transmit_window(&mut self, now: SimTime) -> Vec<Segment> {
        let mut out = Vec::new();
        // Before the handshake completes, data waits in `unacked`.
        if !matches!(
            self.state,
            SocketState::Established | SocketState::CloseWait
        ) {
            return out;
        }
        loop {
            let inflight = self.inflight_bytes();
            let window = self.cwnd.min(self.peer_window);
            let budget = window.saturating_sub(inflight) as usize;
            let sent_off = (self.snd_nxt - self.data_base) as usize;
            let avail = self.unacked.len().saturating_sub(sent_off);
            let len = budget.min(avail).min(self.cfg.mss);
            if len == 0 {
                break;
            }
            let Some(window) = self.unacked.get(sent_off..sent_off + len) else {
                break;
            };
            let chunk = Bytes::copy_from_slice(window);
            let mut flags = Flags::ACK;
            flags.psh = sent_off + len == self.unacked.len();
            let seg = self.make_segment(self.snd_nxt, flags, chunk);
            if self.rtt_probe.is_none() {
                self.rtt_probe = Some((seg.seq_end(), now));
            }
            self.snd_nxt += len as u32;
            out.push(seg);
        }
        // Flush FIN once all data is out.
        if self.fin_queued && !self.fin_sent {
            let all_sent = (self.snd_nxt - self.data_base) as usize >= self.unacked.len();
            if all_sent {
                let fin = self.make_segment(self.snd_nxt, Flags::FIN_ACK, Bytes::new());
                self.snd_nxt += 1;
                self.fin_sent = true;
                self.state = match self.state {
                    SocketState::CloseWait => SocketState::LastAck,
                    _ => SocketState::FinWait1,
                };
                out.push(fin);
            }
        }
        if !out.is_empty() && self.rtx_deadline.is_none() {
            self.rtx_deadline = Some(now + self.rto);
        }
        out
    }

    /// Processes an incoming segment; returns segments to transmit.
    pub fn on_segment(&mut self, seg: &Segment, now: SimTime) -> Vec<Segment> {
        if self.state.is_terminal() {
            return Vec::new();
        }
        if seg.flags.rst {
            self.state = SocketState::Reset;
            self.rtx_deadline = None;
            return Vec::new();
        }
        match self.state {
            SocketState::SynSent => self.on_segment_syn_sent(seg, now),
            SocketState::SynReceived => self.on_segment_syn_received(seg, now),
            _ => self.on_segment_connected(seg, now),
        }
    }

    fn on_segment_syn_sent(&mut self, seg: &Segment, now: SimTime) -> Vec<Segment> {
        if !(seg.flags.syn && seg.flags.ack) || seg.ack != self.iss + 1 {
            // Not our SYN-ACK; ignore (simultaneous open unsupported).
            return Vec::new();
        }
        self.irs = seg.seq;
        self.rcv_nxt = seg.seq + 1;
        self.snd_una = seg.ack;
        self.peer_window = seg.window;
        self.state = SocketState::Established;
        self.retries = 0;
        self.rto = self.cfg.min_rto;
        self.rtx_deadline = None;
        let mut out = vec![self.make_segment(self.snd_nxt, Flags::ACK, Bytes::new())];
        out.extend(self.transmit_window(now));
        out
    }

    fn on_segment_syn_received(&mut self, seg: &Segment, now: SimTime) -> Vec<Segment> {
        if seg.flags.syn && !seg.flags.ack {
            // Duplicate SYN (client retransmitted): resend SYN-ACK.
            return vec![self.make_segment(self.iss, Flags::SYN_ACK, Bytes::new())];
        }
        if seg.flags.ack && seg.ack == self.iss + 1 {
            self.snd_una = seg.ack;
            self.peer_window = seg.window;
            self.state = SocketState::Established;
            self.retries = 0;
            self.rto = self.cfg.min_rto;
            self.rtx_deadline = None;
            // The ACK may carry data (and often does: the HTTP request).
            let mut out = self.on_segment_connected(seg, now);
            out.extend(self.transmit_window(now));
            return out;
        }
        Vec::new()
    }

    fn on_segment_connected(&mut self, seg: &Segment, now: SimTime) -> Vec<Segment> {
        let mut out = Vec::new();
        if seg.flags.ack {
            self.process_ack(seg, now, &mut out);
        }
        if !seg.payload.is_empty() || seg.flags.fin {
            self.process_data(seg, now, &mut out);
        }
        out.extend(self.transmit_window(now));
        out
    }

    fn process_ack(&mut self, seg: &Segment, now: SimTime, out: &mut Vec<Segment>) {
        let ack = seg.ack;
        if ack.le(self.snd_una) {
            // Duplicate or old ACK.
            if ack == self.snd_una
                && seg.payload.is_empty()
                && !seg.flags.syn
                && !seg.flags.fin
                && self.inflight_bytes() > 0
            {
                self.dup_acks += 1;
                if self.dup_acks == 3 {
                    // Fast retransmit.
                    self.ssthresh = (self.inflight_bytes() / 2).max(2 * self.cfg.mss as u32);
                    self.cwnd = self.ssthresh + 3 * self.cfg.mss as u32;
                    self.retransmitted_segments += 1;
                    self.rtt_probe = None;
                    out.extend(self.retransmit_head());
                }
            }
            self.peer_window = seg.window;
            return;
        }
        if self.snd_nxt.lt(ack) {
            // Acks data we never sent; ignore.
            return;
        }
        // Fresh ACK: drop acknowledged bytes from the send buffer. The
        // buffer holds data only, so clamp by its length (SYN/FIN occupy
        // sequence space but no buffer bytes).
        let acked = ack - self.snd_una;
        let drop = (ack - self.data_base).min(self.unacked.len() as u32);
        if drop > 0 {
            let _ = self.unacked.split_to(drop as usize);
            self.data_base += drop;
        }
        self.snd_una = ack;
        self.dup_acks = 0;
        self.retries = 0;
        self.peer_window = seg.window;
        // RTT sample (Karn-safe: probe cleared on retransmit).
        if let Some((probe_seq, sent_at)) = self.rtt_probe {
            if probe_seq.le(ack) {
                self.rtt_probe = None;
                let sample = now.saturating_sub(sent_at);
                self.update_rto(sample);
            }
        }
        // Congestion window growth.
        let mss = self.cfg.mss as u32;
        if self.cwnd < self.ssthresh {
            self.cwnd = self.cwnd.saturating_add(acked.min(mss));
        } else {
            self.cwnd = self
                .cwnd
                .saturating_add((mss * mss / self.cwnd.max(1)).max(1));
        }
        // RTO recovery (the "ACK clocking" promised by `retransmit_head`):
        // a partial ACK means the rest of the lost flight is still missing,
        // so retransmit the next head per fresh ACK — one segment per RTT —
        // rather than one per exponentially backed-off RTO. Once the ACK
        // covers the recovery point, drop the backoff (Karn froze the RTT
        // estimator during the episode, so `rto` never decays on its own).
        if let Some(rec) = self.recover {
            if ack.lt(rec) {
                self.retransmitted_segments += 1;
                self.rtt_probe = None;
                out.extend(self.retransmit_head());
            } else {
                self.recover = None;
                self.rto = self.estimated_rto();
            }
        }
        // Restart or clear the retransmission timer.
        let fin_outstanding = self.fin_sent && self.snd_una.lt(self.snd_nxt);
        if self.inflight_bytes() > 0 || fin_outstanding {
            self.rtx_deadline = Some(now + self.rto);
        } else {
            self.rtx_deadline = None;
        }
        // Teardown progress when our FIN got acked.
        if self.fin_sent && ack == self.snd_nxt {
            self.state = match self.state {
                SocketState::FinWait1 => SocketState::FinWait2,
                SocketState::Closing => {
                    self.enter_time_wait(now);
                    SocketState::TimeWait
                }
                SocketState::LastAck => SocketState::Closed,
                s => s,
            };
        }
    }

    fn update_rto(&mut self, sample: SimTime) {
        // Jacobson/Karels (RFC 6298) in microsecond integers.
        let s = sample.as_micros() as i64;
        let srtt = match self.srtt {
            None => {
                self.rttvar = SimTime::from_micros((s / 2) as u64);
                sample
            }
            Some(srtt) => {
                let srtt_us = srtt.as_micros() as i64;
                let err = (s - srtt_us).abs();
                let rttvar_us = (self.rttvar.as_micros() as i64 * 3 + err) / 4;
                self.rttvar = SimTime::from_micros(rttvar_us as u64);
                SimTime::from_micros(((srtt_us * 7 + s) / 8) as u64)
            }
        };
        self.srtt = Some(srtt);
        self.rto = self.estimated_rto();
    }

    /// RTO from the current Jacobson estimate (min_rto when unsampled).
    fn estimated_rto(&self) -> SimTime {
        match self.srtt {
            Some(srtt) => {
                let rto_us = srtt.as_micros() + 4 * self.rttvar.as_micros();
                SimTime::from_micros(
                    rto_us.clamp(self.cfg.min_rto.as_micros(), self.cfg.max_rto.as_micros()),
                )
            }
            None => self.cfg.min_rto,
        }
    }

    fn process_data(&mut self, seg: &Segment, now: SimTime, out: &mut Vec<Segment>) {
        if seg.flags.fin {
            self.peer_fin = Some(seg.seq + seg.payload.len() as u32);
        }
        if !seg.payload.is_empty() {
            if seg.seq.le(self.rcv_nxt) {
                // Possibly overlapping: trim the already-received prefix.
                let skip = (self.rcv_nxt - seg.seq) as usize;
                if skip < seg.payload.len() {
                    let fresh = seg.payload.slice(skip..);
                    self.rcv_nxt += fresh.len() as u32;
                    self.delivered_bytes += fresh.len() as u64;
                    self.assembled.extend_from_slice(&fresh);
                    self.drain_out_of_order();
                }
            } else {
                // Future data: stash for reassembly, send a duplicate ACK.
                self.out_of_order
                    .entry(seg.seq.raw())
                    .or_insert_with(|| seg.payload.clone());
            }
        }
        // Consume the FIN when it is next in sequence.
        if let Some(fin_seq) = self.peer_fin {
            if fin_seq == self.rcv_nxt {
                self.rcv_nxt += 1;
                self.state = match self.state {
                    SocketState::Established | SocketState::SynReceived => SocketState::CloseWait,
                    SocketState::FinWait1 => SocketState::Closing,
                    SocketState::FinWait2 => {
                        self.enter_time_wait(now);
                        SocketState::TimeWait
                    }
                    s => s,
                };
            }
        }
        // Acknowledge everything received so far.
        out.push(self.make_segment(self.snd_nxt, Flags::ACK, Bytes::new()));
    }

    fn drain_out_of_order(&mut self) {
        while let Some((seq_raw, payload)) = self.out_of_order.pop_first() {
            let seq = SeqNum::new(seq_raw);
            if self.rcv_nxt.lt(seq) {
                // Still a gap before this chunk: put it back and stop.
                self.out_of_order.insert(seq_raw, payload);
                break;
            }
            if seq.le(self.rcv_nxt) {
                let skip = (self.rcv_nxt - seq) as usize;
                if skip < payload.len() {
                    let fresh = payload.slice(skip..);
                    self.rcv_nxt += fresh.len() as u32;
                    self.delivered_bytes += fresh.len() as u64;
                    self.assembled.extend_from_slice(&fresh);
                }
            }
        }
    }

    fn enter_time_wait(&mut self, now: SimTime) {
        self.time_wait_deadline = Some(now + self.cfg.time_wait);
        self.rtx_deadline = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yoda_netsim::Addr;

    fn eps() -> (Endpoint, Endpoint) {
        (
            Endpoint::new(Addr::new(172, 16, 0, 1), 40000),
            Endpoint::new(Addr::new(10, 1, 0, 1), 80),
        )
    }

    /// Drives two sockets to Established and returns them.
    fn handshake() -> (TcpSocket, TcpSocket) {
        let cfg = TcpConfig::default();
        let (c_ep, s_ep) = eps();
        let t = SimTime::ZERO;
        let (mut client, syn) = TcpSocket::connect(cfg, c_ep, s_ep, SeqNum::new(1000), t);
        let (mut server, synack) =
            TcpSocket::accept(cfg, s_ep, c_ep, &syn, SeqNum::new(5000), t).unwrap();
        let acks = client.on_segment(&synack, t);
        for s in &acks {
            server.on_segment(s, t);
        }
        assert_eq!(client.state(), SocketState::Established);
        assert_eq!(server.state(), SocketState::Established);
        (client, server)
    }

    /// Delivers `segs` to `to`, returning its replies.
    fn deliver(to: &mut TcpSocket, segs: &[Segment], t: SimTime) -> Vec<Segment> {
        let mut out = Vec::new();
        for s in segs {
            out.extend(to.on_segment(s, t));
        }
        out
    }

    /// Fully exchanges segments until both sides go quiet.
    fn pump(a: &mut TcpSocket, b: &mut TcpSocket, first: Vec<Segment>, t: SimTime) {
        let mut to_b = first;
        loop {
            let to_a = deliver(b, &to_b, t);
            if to_a.is_empty() {
                break;
            }
            to_b = deliver(a, &to_a, t);
            if to_b.is_empty() {
                break;
            }
        }
    }

    #[test]
    fn accept_rejects_non_syn() {
        let cfg = TcpConfig::default();
        let (c_ep, s_ep) = eps();
        let not_syn = Segment {
            src_port: c_ep.port,
            dst_port: s_ep.port,
            seq: SeqNum::new(1),
            ack: SeqNum::new(0),
            flags: Flags::ACK,
            window: 1000,
            payload: Bytes::new(),
        };
        assert!(TcpSocket::accept(cfg, s_ep, c_ep, &not_syn, SeqNum::new(1), SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn small_transfer_delivers_bytes() {
        let (mut client, mut server) = handshake();
        let t = SimTime::from_millis(1);
        let segs = client.send(b"GET / HTTP/1.0\r\n\r\n", t);
        assert!(!segs.is_empty());
        pump(&mut client, &mut server, segs, t);
        assert_eq!(&server.take_data()[..], b"GET / HTTP/1.0\r\n\r\n");
    }

    #[test]
    fn large_transfer_respects_mss_and_reassembles() {
        let (mut client, mut server) = handshake();
        let t = SimTime::from_millis(1);
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let segs = client.send(&data, t);
        for s in &segs {
            assert!(s.payload.len() <= 1460);
        }
        pump(&mut client, &mut server, segs, t);
        assert_eq!(&server.take_data()[..], &data[..]);
        assert_eq!(server.delivered_bytes(), 100_000);
    }

    #[test]
    fn out_of_order_reassembly() {
        let (mut client, mut server) = handshake();
        let t = SimTime::from_millis(1);
        let segs = client.send(&[1u8; 1460], t);
        let segs2 = client.send(&[2u8; 1460], t);
        // Deliver the second segment first.
        let dup_acks = deliver(&mut server, &segs2, t);
        // Out-of-order data elicits an ACK for the old rcv_nxt.
        assert!(dup_acks.iter().all(|s| s.flags.ack));
        deliver(&mut server, &segs, t);
        let got = server.take_data();
        assert_eq!(got.len(), 2920);
        assert_eq!(got[0], 1);
        assert_eq!(got[2919], 2);
    }

    #[test]
    fn retransmission_after_loss() {
        let (mut client, mut server) = handshake();
        let t0 = SimTime::from_millis(1);
        let segs = client.send(b"hello", t0);
        // Segments lost: nothing delivered. RTO fires at min_rto (300 ms).
        drop(segs);
        let deadline = client.next_deadline().expect("rtx armed");
        assert_eq!(deadline, t0 + SimTime::from_millis(300));
        let rtx = client.on_timer(deadline);
        assert_eq!(rtx.len(), 1);
        assert_eq!(&rtx[0].payload[..], b"hello");
        assert_eq!(client.retransmitted_segments(), 1);
        // Second loss backs off to 600 ms (paper Fig. 12b timeline).
        let d2 = client.next_deadline().unwrap();
        assert_eq!(d2, deadline + SimTime::from_millis(600));
        let rtx2 = client.on_timer(d2);
        assert_eq!(&rtx2[0].payload[..], b"hello");
        // Delivery after retransmission still works.
        pump(&mut client, &mut server, rtx2, d2);
        assert_eq!(&server.take_data()[..], b"hello");
    }

    #[test]
    fn syn_retransmit_uses_3s_timeout() {
        let cfg = TcpConfig::default();
        let (c_ep, s_ep) = eps();
        let (mut client, _syn) =
            TcpSocket::connect(cfg, c_ep, s_ep, SeqNum::new(1), SimTime::ZERO);
        assert_eq!(client.next_deadline(), Some(SimTime::from_secs(3)));
        let rtx = client.on_timer(SimTime::from_secs(3));
        assert_eq!(rtx.len(), 1);
        assert!(rtx[0].flags.syn && !rtx[0].flags.ack);
    }

    #[test]
    fn duplicate_syn_gets_synack_again() {
        let cfg = TcpConfig::default();
        let (c_ep, s_ep) = eps();
        let t = SimTime::ZERO;
        let (_client, syn) = TcpSocket::connect(cfg, c_ep, s_ep, SeqNum::new(1), t);
        let (mut server, synack1) =
            TcpSocket::accept(cfg, s_ep, c_ep, &syn, SeqNum::new(9), t).unwrap();
        let reply = server.on_segment(&syn, t);
        assert_eq!(reply.len(), 1);
        assert_eq!(reply[0], synack1);
    }

    #[test]
    fn retry_exhaustion_resets() {
        let cfg = TcpConfig {
            max_retries: 2,
            ..TcpConfig::default()
        };
        let (c_ep, s_ep) = eps();
        let (mut client, _) = TcpSocket::connect(cfg, c_ep, s_ep, SeqNum::new(1), SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for _ in 0..3 {
            now = client.next_deadline().unwrap_or(now + SimTime::from_secs(100));
            client.on_timer(now);
        }
        assert_eq!(client.state(), SocketState::Reset);
    }

    #[test]
    fn rst_kills_connection() {
        let (mut client, mut server) = handshake();
        let rst = client.abort();
        server.on_segment(&rst, SimTime::from_millis(2));
        assert_eq!(server.state(), SocketState::Reset);
        assert_eq!(client.state(), SocketState::Reset);
    }

    #[test]
    fn orderly_close_both_sides() {
        let (mut client, mut server) = handshake();
        let t = SimTime::from_millis(5);
        // Client sends request, server answers, both close.
        let req = client.send(b"req", t);
        pump(&mut client, &mut server, req, t);
        let resp = server.send(b"resp", t);
        pump(&mut server, &mut client, resp, t);
        assert_eq!(&client.take_data()[..], b"resp");

        let fin = client.close(t);
        assert_eq!(client.state(), SocketState::FinWait1);
        let back = deliver(&mut server, &fin, t);
        assert_eq!(server.state(), SocketState::CloseWait);
        let more = deliver(&mut client, &back, t);
        assert_eq!(client.state(), SocketState::FinWait2);
        deliver(&mut server, &more, t);
        let server_fin = server.close(t);
        assert_eq!(server.state(), SocketState::LastAck);
        let last_ack = deliver(&mut client, &server_fin, t);
        assert_eq!(client.state(), SocketState::TimeWait);
        deliver(&mut server, &last_ack, t);
        assert_eq!(server.state(), SocketState::Closed);
        assert!(client.peer_closed());
    }

    #[test]
    fn fin_waits_for_queued_data() {
        let (mut client, mut server) = handshake();
        let t = SimTime::from_millis(1);
        // Fill beyond the initial cwnd so data remains queued, then close.
        let big = vec![7u8; 30_000];
        let segs = client.send(&big, t);
        let fin_now = client.close(t);
        // FIN must not have been emitted while data is still queued.
        assert!(fin_now.iter().all(|s| !s.flags.fin));
        assert!(segs.iter().all(|s| !s.flags.fin));
        pump(&mut client, &mut server, segs, t);
        assert_eq!(server.take_data().len(), 30_000);
        // After everything is acked the FIN flows and teardown progresses.
        assert!(client.state() == SocketState::FinWait1 || client.state() == SocketState::FinWait2);
    }

    #[test]
    fn send_after_close_discarded() {
        let (mut client, _server) = handshake();
        let t = SimTime::from_millis(1);
        client.close(t);
        assert!(client.send(b"late", t).is_empty());
    }

    #[test]
    fn fast_retransmit_on_three_dup_acks() {
        let (mut client, mut server) = handshake();
        let t = SimTime::from_millis(1);
        // Send 5 segments; drop the first, deliver the rest.
        let data = vec![9u8; 1460 * 5];
        let segs = client.send(&data, t);
        assert_eq!(segs.len(), 5);
        let mut dup_acks = Vec::new();
        for s in &segs[1..] {
            dup_acks.extend(server.on_segment(s, t));
        }
        assert!(dup_acks.len() >= 3);
        let mut rtx = Vec::new();
        for a in &dup_acks {
            rtx.extend(client.on_segment(a, t));
        }
        // The lost head was fast-retransmitted.
        assert!(rtx.iter().any(|s| s.seq == segs[0].seq));
        assert!(client.retransmitted_segments() >= 1);
        // Deliver it; the server reassembles everything.
        pump(&mut client, &mut server, rtx, t);
        assert_eq!(server.take_data().len(), 1460 * 5);
    }

    #[test]
    fn rtt_estimation_updates_rto() {
        let (mut client, mut server) = handshake();
        let t0 = SimTime::from_millis(10);
        let segs = client.send(b"x", t0);
        let acks = deliver(&mut server, &segs, t0 + SimTime::from_millis(100));
        deliver(&mut client, &acks, t0 + SimTime::from_millis(200));
        // SRTT ≈ 200 ms; RTO = srtt + 4*rttvar ≈ 600 ms, above min_rto.
        let segs2 = client.send(b"y", SimTime::from_millis(300));
        let _ = segs2;
        let dl = client.next_deadline().expect("armed");
        assert!(dl > SimTime::from_millis(300) + SimTime::from_millis(300));
    }

    #[test]
    fn data_on_handshake_ack_is_processed() {
        // The client's first data segment often rides right behind the
        // handshake ACK; Yoda depends on the server accepting data carried
        // on the ACK that completes the handshake.
        let cfg = TcpConfig::default();
        let (c_ep, s_ep) = eps();
        let t = SimTime::ZERO;
        let (mut client, syn) = TcpSocket::connect(cfg, c_ep, s_ep, SeqNum::new(50), t);
        let (mut server, synack) =
            TcpSocket::accept(cfg, s_ep, c_ep, &syn, SeqNum::new(80), t).unwrap();
        let mut from_client = client.on_segment(&synack, t);
        from_client.extend(client.send(b"payload", t));
        // Merge: deliver ACK then data (two segments is fine too).
        deliver(&mut server, &from_client, t);
        assert_eq!(server.state(), SocketState::Established);
        assert_eq!(&server.take_data()[..], b"payload");
    }
}
