//! User-level TCP for the Yoda reproduction.
//!
//! The paper's Yoda prototype runs entirely in user space, crafting and
//! rewriting raw TCP segments (via nfqueue/iptables). This crate provides
//! the equivalent building blocks over `yoda-netsim`:
//!
//! * [`SeqNum`] — RFC 793 modulo-2³² sequence arithmetic, the foundation of
//!   Yoda's tunneling-phase sequence translation (paper Figure 4),
//! * [`Segment`] — the TCP segment with an explicit wire format,
//! * [`TcpSocket`] — a sans-IO endpoint state machine (handshake,
//!   retransmission with exponential backoff, reassembly, slow start,
//!   FIN teardown) used by clients, backend servers, and the HAProxy-style
//!   baseline proxy,
//! * [`TcpStack`] — glue that runs many sockets inside one simulator node.
//!
//! Timer constants reproduce the paper's observations: initial SYN
//! retransmission timeout of 3 s ("we observe the SYN timeout to be 3 sec
//! in Ubuntu", §4.2) and a 300 ms minimum data RTO (the backend server in
//! Figure 12(b) retransmits at +300 ms and +600 ms).

#![deny(warnings)]

#![forbid(unsafe_code)]

pub mod segment;
pub mod seq;
pub mod socket;
pub mod stack;

pub use segment::{Flags, Segment, SEGMENT_HEADER_LEN};
pub use seq::SeqNum;
pub use socket::{SocketState, TcpConfig, TcpSocket};
pub use stack::{ConnId, TcpEvent, TcpStack, TCP_TIMER_KIND};
