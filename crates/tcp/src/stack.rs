//! [`TcpStack`]: many sockets inside one simulator node.
//!
//! A node embeds a `TcpStack`, forwards TCP packets and stack timers to it,
//! and receives [`TcpEvent`]s describing connection lifecycle and data
//! arrival. The stack handles demultiplexing by flow, listener sockets,
//! timer (re)arming against the simulator clock, and ISN generation.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use yoda_netsim::{Ctx, Endpoint, Packet, SimTime, TimerToken};

use crate::segment::{Flags, Segment};
use crate::seq::SeqNum;
use crate::socket::{SocketState, TcpConfig, TcpSocket};

/// Timer-token `kind` reserved by the stack. Nodes must route timers with
/// this kind to [`TcpStack::on_timer`].
pub const TCP_TIMER_KIND: u32 = 0x7C9;

/// Handle to a connection within a stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// What happened on a connection during packet/timer processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpEvent {
    /// A listener accepted a new connection (handshake still completing).
    Incoming(ConnId, Endpoint),
    /// The handshake completed.
    Connected(ConnId),
    /// In-order data is available via [`TcpStack::recv`].
    Data(ConnId),
    /// The peer closed its half of the connection.
    PeerClosed(ConnId),
    /// The connection fully closed (both FINs exchanged).
    Closed(ConnId),
    /// The connection was reset (RST or retry exhaustion).
    Reset(ConnId),
}

impl TcpEvent {
    /// The connection this event concerns.
    pub fn conn(&self) -> ConnId {
        match *self {
            TcpEvent::Incoming(c, _)
            | TcpEvent::Connected(c)
            | TcpEvent::Data(c)
            | TcpEvent::PeerClosed(c)
            | TcpEvent::Closed(c)
            | TcpEvent::Reset(c) => c,
        }
    }
}

struct ConnSlot {
    sock: TcpSocket,
    /// Last state reported to the owner, to generate edge-triggered events.
    reported: SocketState,
    reported_peer_closed: bool,
    armed_deadline: Option<SimTime>,
}

/// A collection of TCP connections owned by one node.
///
/// Listener semantics: [`TcpStack::listen`] marks a local endpoint as
/// accepting; SYNs to it spawn connections. SYNs (or other segments) to
/// non-listening endpoints get a RST when `rst_unknown` is set (real-OS
/// behaviour), or are silently dropped otherwise (the behaviour of an L7
/// proxy that lost its state — paper §7.2's HAProxy failure mode).
pub struct TcpStack {
    cfg: TcpConfig,
    rst_unknown: bool,
    conns: BTreeMap<ConnId, ConnSlot>,
    by_flow: BTreeMap<(Endpoint, Endpoint), ConnId>,
    listeners: Vec<Endpoint>,
    next_id: u64,
    next_ephemeral: u16,
}

impl TcpStack {
    /// Creates a stack with the given socket configuration.
    pub fn new(cfg: TcpConfig) -> Self {
        TcpStack {
            cfg,
            rst_unknown: true,
            conns: BTreeMap::new(),
            by_flow: BTreeMap::new(),
            listeners: Vec::new(),
            next_id: 1,
            next_ephemeral: 33000,
        }
    }

    /// Configures whether segments for unknown flows elicit a RST.
    pub fn set_rst_unknown(&mut self, rst: bool) {
        self.rst_unknown = rst;
    }

    /// Starts accepting connections on `local`.
    pub fn listen(&mut self, local: Endpoint) {
        if !self.listeners.contains(&local) {
            self.listeners.push(local);
        }
    }

    /// Randomizes where ephemeral allocation starts (real stacks do this;
    /// it also keeps distinct hosts' port spaces decorrelated, which
    /// matters to Yoda because the backend connection reuses the client's
    /// source port — two clients sharing a port, VIP, and backend would
    /// collide on the server-side 5-tuple).
    pub fn set_ephemeral_base(&mut self, base: u16) {
        self.next_ephemeral = 33000 + base % 28_000;
    }

    /// Allocates an ephemeral port (wrapping within 33000..61000).
    pub fn ephemeral_port(&mut self) -> u16 {
        let p = self.next_ephemeral;
        self.next_ephemeral = if p >= 60999 { 33000 } else { p + 1 };
        p
    }

    /// Number of live (non-terminal) connections.
    pub fn active_conns(&self) -> usize {
        self.conns
            .values()
            .filter(|c| !c.sock.state().is_terminal())
            .count()
    }

    /// Opens a connection from `local` to `remote`, sending the SYN.
    /// The ISN is drawn from the node's private RNG stream.
    pub fn connect(&mut self, ctx: &mut Ctx<'_>, local: Endpoint, remote: Endpoint) -> ConnId {
        let iss = SeqNum::new(ctx.node_rng().next_u32());
        self.connect_with_isn(ctx, local, remote, iss)
    }

    /// Opens a connection with an explicit ISN (Yoda reuses the client ISN
    /// toward the backend, §4.1).
    pub fn connect_with_isn(
        &mut self,
        ctx: &mut Ctx<'_>,
        local: Endpoint,
        remote: Endpoint,
        iss: SeqNum,
    ) -> ConnId {
        let (sock, syn) = TcpSocket::connect(self.cfg, local, remote, iss, ctx.now());
        let id = self.insert(sock);
        self.by_flow.insert((remote, local), id);
        ctx.send(syn.into_packet(local, remote));
        self.rearm(ctx, id);
        id
    }

    fn insert(&mut self, sock: TcpSocket) -> ConnId {
        let id = ConnId(self.next_id);
        self.next_id += 1;
        let reported = sock.state();
        self.conns.insert(
            id,
            ConnSlot {
                sock,
                reported,
                reported_peer_closed: false,
                armed_deadline: None,
            },
        );
        id
    }

    /// Queues data on a connection.
    pub fn send(&mut self, ctx: &mut Ctx<'_>, id: ConnId, data: &[u8]) {
        let now = ctx.now();
        if let Some(slot) = self.conns.get_mut(&id) {
            let segs = slot.sock.send(data, now);
            let (local, remote) = (slot.sock.local(), slot.sock.remote());
            for s in segs {
                ctx.send(s.into_packet(local, remote));
            }
            self.rearm(ctx, id);
        }
    }

    /// Drains received data from a connection.
    pub fn recv(&mut self, id: ConnId) -> bytes::Bytes {
        self.conns
            .get_mut(&id)
            .map(|s| s.sock.take_data())
            .unwrap_or_default()
    }

    /// Closes the send side of a connection.
    pub fn close(&mut self, ctx: &mut Ctx<'_>, id: ConnId) {
        let now = ctx.now();
        if let Some(slot) = self.conns.get_mut(&id) {
            let segs = slot.sock.close(now);
            let (local, remote) = (slot.sock.local(), slot.sock.remote());
            for s in segs {
                ctx.send(s.into_packet(local, remote));
            }
            self.rearm(ctx, id);
        }
    }

    /// Aborts a connection with a RST.
    pub fn abort(&mut self, ctx: &mut Ctx<'_>, id: ConnId) {
        if let Some(slot) = self.conns.get_mut(&id) {
            let rst = slot.sock.abort();
            let (local, remote) = (slot.sock.local(), slot.sock.remote());
            ctx.send(rst.into_packet(local, remote));
        }
    }

    /// Immutable access to a connection's socket.
    pub fn socket(&self, id: ConnId) -> Option<&TcpSocket> {
        self.conns.get(&id).map(|s| &s.sock)
    }

    /// Handles a TCP packet addressed to this node. Returns lifecycle/data
    /// events for the owner.
    pub fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) -> Vec<TcpEvent> {
        let Some(seg) = Segment::from_packet(pkt) else {
            return Vec::new();
        };
        let flow = (pkt.src, pkt.dst);
        let now = ctx.now();
        let mut events = Vec::new();
        let id = match self.by_flow.entry(flow) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(_) => {
                // New flow: maybe a listener accepts it.
                if seg.flags.syn && !seg.flags.ack && self.listeners.contains(&pkt.dst) {
                    let iss = SeqNum::new(ctx.node_rng().next_u32());
                    if let Some((sock, synack)) =
                        TcpSocket::accept(self.cfg, pkt.dst, pkt.src, &seg, iss, now)
                    {
                        let id = self.insert(sock);
                        self.by_flow.insert(flow, id);
                        ctx.send(synack.into_packet(pkt.dst, pkt.src));
                        self.rearm(ctx, id);
                        events.push(TcpEvent::Incoming(id, pkt.src));
                        return events;
                    }
                }
                if self.rst_unknown && !seg.flags.rst {
                    let rst = Segment {
                        src_port: pkt.dst.port,
                        dst_port: pkt.src.port,
                        seq: seg.ack,
                        ack: seg.seq_end(),
                        flags: Flags::RST,
                        window: 0,
                        payload: bytes::Bytes::new(),
                    };
                    ctx.send(rst.into_packet(pkt.dst, pkt.src));
                }
                return events;
            }
        };
        let Some(slot) = self.conns.get_mut(&id) else {
            return events;
        };
        let out = slot.sock.on_segment(&seg, now);
        let (local, remote) = (slot.sock.local(), slot.sock.remote());
        for s in out {
            ctx.send(s.into_packet(local, remote));
        }
        self.emit_events(id, &mut events);
        self.rearm(ctx, id);
        events
    }

    /// Handles a stack timer. Nodes must call this for timers whose token
    /// kind equals [`TCP_TIMER_KIND`].
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) -> Vec<TcpEvent> {
        debug_assert_eq!(token.kind, TCP_TIMER_KIND);
        let id = ConnId(token.a);
        let now = ctx.now();
        let mut events = Vec::new();
        let Some(slot) = self.conns.get_mut(&id) else {
            return events;
        };
        // Stale timer (a newer one was armed): ignore.
        match slot.armed_deadline {
            Some(d) if d <= now => slot.armed_deadline = None,
            _ => return events,
        }
        let out = slot.sock.on_timer(now);
        let (local, remote) = (slot.sock.local(), slot.sock.remote());
        for s in out {
            ctx.send(s.into_packet(local, remote));
        }
        self.emit_events(id, &mut events);
        self.rearm(ctx, id);
        events
    }

    /// Emits edge-triggered events by comparing current vs. reported state.
    fn emit_events(&mut self, id: ConnId, events: &mut Vec<TcpEvent>) {
        let Some(slot) = self.conns.get_mut(&id) else {
            return;
        };
        let state = slot.sock.state();
        if slot.reported != state {
            match state {
                SocketState::Established => events.push(TcpEvent::Connected(id)),
                SocketState::Reset => events.push(TcpEvent::Reset(id)),
                SocketState::Closed | SocketState::TimeWait => events.push(TcpEvent::Closed(id)),
                _ => {}
            }
            slot.reported = state;
        }
        if slot.sock.peer_closed() && !slot.reported_peer_closed {
            slot.reported_peer_closed = true;
            events.push(TcpEvent::PeerClosed(id));
        }
        if slot.sock.delivered_bytes() > 0 {
            // Data event whenever there is unread data; the owner drains.
            events.push(TcpEvent::Data(id));
        }
        // Garbage-collect terminal connections.
        if state.is_terminal() {
            let flow = (slot.sock.remote(), slot.sock.local());
            self.by_flow.remove(&flow);
        }
    }

    /// Re-arms the node timer for a connection when its deadline moved
    /// earlier (or was unarmed).
    fn rearm(&mut self, ctx: &mut Ctx<'_>, id: ConnId) {
        let Some(slot) = self.conns.get_mut(&id) else {
            return;
        };
        let Some(deadline) = slot.sock.next_deadline() else {
            return;
        };
        let need = match slot.armed_deadline {
            Some(armed) => deadline < armed,
            None => true,
        };
        if need {
            slot.armed_deadline = Some(deadline);
            let delay = deadline.saturating_sub(ctx.now());
            ctx.set_timer(delay, TimerToken::new(TCP_TIMER_KIND).with_a(id.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;
    use yoda_netsim::{Addr, Engine, Node, SimTime, Topology, Zone};

    /// Node wrapping a stack that acts as an echo server: sends back
    /// whatever it receives, then closes when the peer closes.
    struct EchoServer {
        stack: TcpStack,
        listen: Endpoint,
        echoed: u64,
    }
    impl Node for EchoServer {
        fn on_start(&mut self, _ctx: &mut Ctx<'_>) {
            self.stack.listen(self.listen);
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            for ev in self.stack.on_packet(ctx, &pkt) {
                match ev {
                    TcpEvent::Data(id) => {
                        let data = self.stack.recv(id);
                        self.echoed += data.len() as u64;
                        self.stack.send(ctx, id, &data);
                    }
                    TcpEvent::PeerClosed(id) => self.stack.close(ctx, id),
                    _ => {}
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
            self.stack.on_timer(ctx, token);
        }
    }

    /// Client that sends one blob and collects the echo.
    struct BlobClient {
        stack: TcpStack,
        local: Addr,
        server: Endpoint,
        blob: Vec<u8>,
        received: Vec<u8>,
        conn: Option<ConnId>,
        done_at: Option<SimTime>,
    }
    impl Node for BlobClient {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let port = self.stack.ephemeral_port();
            let local = Endpoint::new(self.local, port);
            let id = self.stack.connect(ctx, local, self.server);
            self.conn = Some(id);
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            for ev in self.stack.on_packet(ctx, &pkt) {
                match ev {
                    TcpEvent::Connected(id) => {
                        let blob = self.blob.clone();
                        self.stack.send(ctx, id, &blob);
                    }
                    TcpEvent::Data(id) => {
                        let data = self.stack.recv(id);
                        self.received.extend_from_slice(&data);
                        if self.received.len() >= self.blob.len() {
                            self.stack.close(ctx, id);
                            self.done_at.get_or_insert(ctx.now());
                        }
                    }
                    _ => {}
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
            self.stack.on_timer(ctx, token);
        }
    }

    fn run_echo(blob_len: usize, loss: f64) -> (Engine, yoda_netsim::NodeId, Vec<u8>) {
        let mut topo = Topology::uniform(SimTime::from_millis(5));
        if loss > 0.0 {
            topo.set_link_bidir(
                Zone::Dc,
                Zone::Dc,
                yoda_netsim::LinkSpec {
                    latency: SimTime::from_millis(5),
                    jitter: SimTime::ZERO,
                    bandwidth_bps: None,
                    loss,
                    duplicate: 0.0,
                },
            );
        }
        let mut eng = Engine::with_topology(3, topo);
        let server_ep = Endpoint::new(Addr::new(10, 1, 0, 1), 80);
        eng.add_node(
            "server",
            server_ep.addr,
            Zone::Dc,
            Box::new(EchoServer {
                stack: TcpStack::new(TcpConfig::default()),
                listen: server_ep,
                echoed: 0,
            }),
        );
        let blob: Vec<u8> = (0..blob_len).map(|i| (i % 253) as u8).collect();
        let client_id = eng.add_node(
            "client",
            Addr::new(10, 2, 0, 1),
            Zone::Dc,
            Box::new(BlobClient {
                stack: TcpStack::new(TcpConfig::default()),
                local: Addr::new(10, 2, 0, 1),
                server: server_ep,
                blob: blob.clone(),
                received: Vec::new(),
                conn: None,
                done_at: None,
            }),
        );
        eng.run_for(SimTime::from_secs(60));
        (eng, client_id, blob)
    }

    #[test]
    fn echo_small_blob_over_network() {
        let (eng, client_id, blob) = run_echo(100, 0.0);
        let client = eng.node_ref::<BlobClient>(client_id);
        assert_eq!(client.received, blob);
        // 5 ms/hop: SYN, SYN-ACK, data, echo ≈ 4 hops ≈ 20 ms.
        let done = client.done_at.expect("completed");
        assert!(done < SimTime::from_millis(100), "took {done}");
    }

    #[test]
    fn echo_large_blob_over_network() {
        let (eng, client_id, blob) = run_echo(500_000, 0.0);
        let client = eng.node_ref::<BlobClient>(client_id);
        assert_eq!(client.received.len(), blob.len());
        assert_eq!(client.received, blob);
    }

    #[test]
    fn echo_survives_packet_loss() {
        let (eng, client_id, blob) = run_echo(50_000, 0.05);
        let client = eng.node_ref::<BlobClient>(client_id);
        assert_eq!(client.received, blob, "retransmissions recover all data");
    }

    #[test]
    fn unknown_flow_gets_rst() {
        // A data segment to a stack with no matching flow and no listener
        // must elicit RST (real-OS behaviour).
        struct Probe {
            got_rst: bool,
            server: Endpoint,
        }
        impl Node for Probe {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let seg = Segment {
                    src_port: 5555,
                    dst_port: self.server.port,
                    seq: SeqNum::new(10),
                    ack: SeqNum::new(0),
                    flags: Flags::ACK,
                    window: 100,
                    payload: bytes::Bytes::from_static(b"stray"),
                };
                let me = Endpoint::new(Addr::new(10, 2, 0, 1), 5555);
                ctx.send(seg.into_packet(me, self.server));
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, pkt: Packet) {
                if let Some(seg) = Segment::from_packet(&pkt) {
                    if seg.flags.rst {
                        self.got_rst = true;
                    }
                }
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: TimerToken) {}
        }
        let mut eng = Engine::with_topology(1, Topology::uniform(SimTime::from_millis(1)));
        let server_ep = Endpoint::new(Addr::new(10, 1, 0, 1), 80);
        eng.add_node(
            "server",
            server_ep.addr,
            Zone::Dc,
            Box::new(EchoServer {
                stack: TcpStack::new(TcpConfig::default()),
                listen: Endpoint::new(server_ep.addr, 81), // listening elsewhere
                echoed: 0,
            }),
        );
        let probe = eng.add_node(
            "probe",
            Addr::new(10, 2, 0, 1),
            Zone::Dc,
            Box::new(Probe {
                got_rst: false,
                server: server_ep,
            }),
        );
        eng.run_for(SimTime::from_secs(1));
        assert!(eng.node_ref::<Probe>(probe).got_rst);
    }

    #[test]
    fn drop_unknown_mode_sends_nothing() {
        let mut stack = TcpStack::new(TcpConfig::default());
        stack.set_rst_unknown(false);
        assert!(!stack.rst_unknown);
    }

    #[test]
    fn ephemeral_ports_wrap() {
        let mut stack = TcpStack::new(TcpConfig::default());
        let first = stack.ephemeral_port();
        assert_eq!(first, 33000);
        for _ in 0..(60999 - 33000) {
            stack.ephemeral_port();
        }
        assert_eq!(stack.ephemeral_port(), 33000);
    }

    #[test]
    fn event_conn_accessor() {
        let ev = TcpEvent::Connected(ConnId(9));
        assert_eq!(ev.conn(), ConnId(9));
        let _: &dyn Any = &ev;
    }
}
