//! Transfers that cross the 2³² sequence wrap: Yoda's tunneling-phase
//! translation and the TCP state machine must both be wrap-clean.

use yoda::core::testbed::{Testbed, TestbedConfig};
use yoda::http::{BrowserClient, BrowserConfig};
use yoda::netsim::{Addr, Endpoint, SimTime};
use yoda::tcp::{SeqNum, TcpConfig, TcpSocket};

#[test]
fn socket_transfer_across_seq_wrap() {
    // ISN a few KB below the wrap point; a 100 KB transfer crosses it.
    let cfg = TcpConfig::default();
    let c_ep = Endpoint::new(Addr::new(172, 16, 0, 1), 40000);
    let s_ep = Endpoint::new(Addr::new(10, 1, 0, 1), 80);
    let iss = SeqNum::new(u32::MAX - 4000);
    let t = SimTime::ZERO;
    let (mut client, syn) = TcpSocket::connect(cfg, c_ep, s_ep, iss, t);
    let (mut server, synack) =
        TcpSocket::accept(cfg, s_ep, c_ep, &syn, SeqNum::new(u32::MAX - 9), t).unwrap();
    let mut to_server = client.on_segment(&synack, t);
    let data: Vec<u8> = (0..100_000).map(|i| (i % 249) as u8).collect();
    to_server.extend(client.send(&data, t));
    loop {
        let mut to_client = Vec::new();
        for s in &to_server {
            to_client.extend(server.on_segment(s, t));
        }
        if to_client.is_empty() {
            break;
        }
        to_server.clear();
        for s in &to_client {
            to_server.extend(client.on_segment(s, t));
        }
        if to_server.is_empty() {
            break;
        }
    }
    assert_eq!(&server.take_data()[..], &data[..]);
}

#[test]
fn yoda_tunnel_across_client_isn_wrap() {
    // Force every client connection's ISN to sit just below the wrap by
    // pinning the browser's TCP stack RNG via the engine seed sweep: we
    // can't choose client ISNs directly through the public browser API,
    // so instead exercise the translation explicitly at the seq level...
    // and then sanity-check a whole-system run for good measure.
    let y = SeqNum::new(5);
    let s = SeqNum::new(u32::MAX - 2);
    let delta = y.offset_from(s);
    // A server byte at the wrap maps into client space and back.
    for raw in [u32::MAX - 2, u32::MAX, 0, 1, 1000] {
        let x = SeqNum::new(raw);
        assert_eq!(x.translate(delta).translate(s.offset_from(y)), x);
    }
    let mut tb = Testbed::build(TestbedConfig {
        seed: 0xF00D,
        num_instances: 2,
        num_stores: 2,
        num_backends: 4,
        num_muxes: 2,
        num_services: 1,
        pages_per_site: 10,
        ..TestbedConfig::default()
    });
    tb.engine.run_for(SimTime::from_secs(1));
    let b = tb.add_browser(
        0,
        BrowserConfig {
            processes: 4,
            max_pages: Some(2),
            ..BrowserConfig::default()
        },
    );
    tb.engine.run_for(SimTime::from_secs(90));
    let bn = tb.engine.node_ref::<BrowserClient>(b);
    assert_eq!(bn.broken_flows, 0);
    assert_eq!(bn.pages_completed, 8);
}
