//! Cross-crate system tests: content-based switching, sticky sessions,
//! policy updates mid-flow, and HTTP/1.1 backend switching on a single
//! keep-alive connection (§5.2).

use bytes::BytesMut;
use yoda::core::testbed::{Testbed, TestbedConfig};
use yoda::core::YodaInstance;
use yoda::http::{parse_response, HttpRequest, OriginServer};
use yoda::netsim::{Addr, Ctx, Endpoint, Node, Packet, SimTime, TimerToken, Zone};
use yoda::tcp::{ConnId, TcpConfig, TcpEvent, TcpStack};

/// Client that sends two HTTP/1.1 requests for different content types on
/// ONE connection, collecting both responses.
struct KeepAliveClient {
    stack: TcpStack,
    addr: Addr,
    target: Endpoint,
    paths: Vec<String>,
    conn: Option<ConnId>,
    buf: BytesMut,
    responses: Vec<usize>,
    next_req: usize,
}

impl KeepAliveClient {
    fn send_next(&mut self, ctx: &mut Ctx<'_>) {
        let Some(conn) = self.conn else { return };
        if self.next_req >= self.paths.len() {
            self.stack.close(ctx, conn);
            return;
        }
        let req = HttpRequest::get(self.paths[self.next_req].clone())
            .http11()
            .with_header("Host", "service0.test")
            .encode();
        self.next_req += 1;
        self.stack.send(ctx, conn, &req);
    }
}

impl Node for KeepAliveClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let port = self.stack.ephemeral_port();
        let local = Endpoint::new(self.addr, port);
        self.conn = Some(self.stack.connect(ctx, local, self.target));
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        for ev in self.stack.on_packet(ctx, &pkt) {
            match ev {
                TcpEvent::Connected(_) => self.send_next(ctx),
                TcpEvent::Data(conn) => {
                    let data = self.stack.recv(conn);
                    self.buf.extend_from_slice(&data);
                    while let Some((resp, used)) = parse_response(&self.buf) {
                        let _ = self.buf.split_to(used);
                        self.responses.push(resp.body.len());
                        self.send_next(ctx);
                    }
                }
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        self.stack.on_timer(ctx, token);
    }
}

#[test]
fn http11_requests_switch_backends_mid_connection() {
    // §5.2: "a single TCP connection can be reused for multiple requests,
    // which may match different rules and hence need to be forwarded to
    // different backend servers". Rules steer .jpg and .css to different
    // backends; the client pipelines both over one connection.
    let mut tb = Testbed::build(TestbedConfig {
        seed: 21,
        num_instances: 2,
        num_stores: 2,
        num_backends: 4,
        num_muxes: 2,
        num_services: 1,
        pages_per_site: 20,
        ..TestbedConfig::default()
    });
    let vip = tb.vips[0];
    let b = tb.service_backends[0].clone();
    // Find one jpg and one css object in site 0.
    let site = tb.catalog.site(0);
    let jpg = site
        .objects
        .iter()
        .find(|o| o.path.ends_with(".jpg"))
        .expect("jpg exists")
        .clone();
    let css = site
        .objects
        .iter()
        .find(|o| o.path.ends_with(".css"))
        .expect("css exists")
        .clone();
    let rules = format!(
        "name=jpg priority=3 match url=*.jpg action=split {}=1\n\
         name=css priority=3 match url=*.css action=split {}=1\n\
         name=rest priority=1 match * action=split {}=1",
        b[0], b[1], b[2]
    );
    tb.set_policy_at(vip, &rules, SimTime::from_millis(500));
    tb.engine.run_for(SimTime::from_secs(1));

    let addr = Addr::new(172, 16, 9, 1);
    let client = tb.engine.add_node(
        "keepalive-client",
        addr,
        Zone::External,
        Box::new(KeepAliveClient {
            stack: TcpStack::new(TcpConfig::default()),
            addr,
            target: vip,
            paths: vec![jpg.path.clone(), css.path.clone()],
            conn: None,
            buf: BytesMut::new(),
            responses: Vec::new(),
            next_req: 0,
        }),
    );
    tb.engine.run_for(SimTime::from_secs(30));

    let c = tb.engine.node_ref::<KeepAliveClient>(client);
    assert_eq!(
        c.responses,
        vec![jpg.size, css.size],
        "both responses arrive in order with correct bodies"
    );
    // The instance performed a mid-connection backend switch.
    let switches: u64 = tb
        .instances
        .iter()
        .map(|&i| tb.engine.node_ref::<YodaInstance>(i).backend_switches)
        .sum();
    assert_eq!(switches, 1, "one content-based switch happened");
    // The jpg went to b[0], the css to b[1].
    let jpg_srv = tb.backends[0];
    let css_srv = tb.backends[1];
    assert_eq!(tb.engine.node_ref::<OriginServer>(jpg_srv).requests, 1);
    assert_eq!(tb.engine.node_ref::<OriginServer>(css_srv).requests, 1);
}

#[test]
fn sticky_sessions_pin_clients_through_the_lb() {
    // Table 3 rule 4: cookie-keyed stickiness, through the full system.
    let mut tb = Testbed::build(TestbedConfig {
        seed: 22,
        num_instances: 2,
        num_stores: 2,
        num_backends: 4,
        num_muxes: 2,
        num_services: 1,
        pages_per_site: 10,
        ..TestbedConfig::default()
    });
    let vip = tb.vips[0];
    let b = tb.service_backends[0].clone();
    let rules = format!(
        "name=ck priority=2 match cookie=session action=sticky session {}=0 {}=0 {}=0",
        b[0], b[1], b[2]
    )
    .replace("=0", "");
    tb.set_policy_at(vip, &rules, SimTime::from_millis(500));
    tb.engine.run_for(SimTime::from_secs(1));
    let browser = tb.add_browser(
        0,
        yoda::http::BrowserConfig {
            processes: 1,
            max_pages: Some(4),
            session_cookie: true,
            ..yoda::http::BrowserConfig::default()
        },
    );
    tb.engine.run_for(SimTime::from_secs(120));
    let bnode = tb.engine.node_ref::<yoda::http::BrowserClient>(browser);
    assert_eq!(bnode.pages_completed, 4);
    assert_eq!(bnode.broken_flows, 0);
    // All requests of this single session landed on exactly one backend.
    let served: Vec<u64> = tb
        .backends
        .iter()
        .map(|&id| tb.engine.node_ref::<OriginServer>(id).requests)
        .collect();
    let nonzero = served.iter().filter(|&&r| r > 0).count();
    assert_eq!(nonzero, 1, "sticky session used one backend: {served:?}");
}

#[test]
fn policy_update_does_not_move_existing_flows() {
    // §5.2: "Packets on existing connections continue to be forwarded to
    // their prior assigned server". Start a long download, then change the
    // policy to point at a different backend; the download finishes from
    // the original backend.
    let mut tb = Testbed::build(TestbedConfig {
        seed: 23,
        num_instances: 2,
        num_stores: 2,
        num_backends: 2,
        num_muxes: 2,
        num_services: 1,
        pages_per_site: 10,
        ..TestbedConfig::default()
    });
    let vip = tb.vips[0];
    let b = tb.service_backends[0].clone();
    let largest = tb
        .catalog
        .site(0)
        .objects
        .iter()
        .max_by_key(|o| o.size)
        .map(|o| o.path.clone())
        .expect("objects");
    tb.set_policy_at(
        vip,
        &format!("name=r priority=1 match * action=split {}=1", b[0]),
        SimTime::from_millis(500),
    );
    tb.engine.run_for(SimTime::from_secs(1));
    let browser = tb.add_browser(
        0,
        yoda::http::BrowserConfig {
            processes: 1,
            max_pages: Some(1),
            fixed_object: Some(largest),
            // The whole download is one request on one connection.
            ..yoda::http::BrowserConfig::default()
        },
    );
    // Mid-download, repoint the service at backend 1.
    let p2 = format!("name=r priority=1 match * action=split {}=1", b[1]);
    tb.set_policy_at(vip, &p2, SimTime::from_millis(2500));
    tb.engine.run_for(SimTime::from_secs(60));
    let bn = tb.engine.node_ref::<yoda::http::BrowserClient>(browser);
    assert_eq!(bn.completed, 1);
    assert_eq!(bn.broken_flows, 0);
    // Only the original backend served anything.
    assert!(tb.engine.node_ref::<OriginServer>(tb.backends[0]).requests == 1);
    assert_eq!(tb.engine.node_ref::<OriginServer>(tb.backends[1]).requests, 0);
}

#[test]
fn deterministic_replay() {
    // The whole stack is deterministic: same seed, same outcome counters.
    let run = || {
        let mut tb = Testbed::build(TestbedConfig {
            seed: 99,
            num_instances: 3,
            num_stores: 2,
            num_backends: 4,
            num_muxes: 2,
            num_services: 2,
            pages_per_site: 10,
            ..TestbedConfig::default()
        });
        let browser = tb.add_browser(
            0,
            yoda::http::BrowserConfig {
                processes: 3,
                max_pages: Some(2),
                ..yoda::http::BrowserConfig::default()
            },
        );
        tb.fail_instance_at(0, SimTime::from_secs(2));
        tb.engine.run_for(SimTime::from_secs(60));
        let b = tb.engine.node_mut::<yoda::http::BrowserClient>(browser);
        (
            b.completed,
            b.pages_completed,
            b.request_latencies.median(),
            tb.engine.packets_sent(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn mirror_action_races_backends_and_serves_one_response() {
    // §5.2 "Sending the same request to multiple servers": the request
    // fans out to every mirror target; the first response wins and the
    // others are cut loose with RSTs.
    let mut tb = Testbed::build(TestbedConfig {
        seed: 31,
        num_instances: 2,
        num_stores: 2,
        num_backends: 3,
        num_muxes: 2,
        num_services: 1,
        pages_per_site: 10,
        ..TestbedConfig::default()
    });
    let vip = tb.vips[0];
    let b = tb.service_backends[0].clone();
    let rules = format!(
        "name=mirror priority=2 match * action=mirror {} {} {}",
        b[0], b[1], b[2]
    );
    tb.set_policy_at(vip, &rules, SimTime::from_millis(500));
    tb.engine.run_for(SimTime::from_secs(1));
    let obj = tb
        .catalog
        .site(0)
        .objects
        .iter()
        .min_by_key(|o| (o.size as i64 - 10 * 1024).abs())
        .map(|o| o.path.clone())
        .expect("objects");
    let browser = tb.add_browser(
        0,
        yoda::http::BrowserConfig {
            processes: 1,
            max_pages: Some(3),
            fixed_object: Some(obj.clone()),
            ..yoda::http::BrowserConfig::default()
        },
    );
    tb.engine.run_for(SimTime::from_secs(60));
    let bn = tb.engine.node_ref::<yoda::http::BrowserClient>(browser);
    assert_eq!(bn.completed, 3, "each fetch served exactly once");
    assert_eq!(bn.broken_flows, 0);
    assert_eq!(bn.resets, 0, "the client never sees the losers");
    // Every backend received each mirrored request.
    let total_served: u64 = tb.backends[..3]
        .iter()
        .map(|&id| tb.engine.node_ref::<OriginServer>(id).requests)
        .sum();
    assert_eq!(total_served, 9, "3 fetches x 3 mirror targets");
}

#[test]
fn ssl_termination_and_cert_resend_across_failover() {
    // §5.2 SSL support: the LB serves the certificate; "on failure during
    // certificate transfer, another YODA instance resends the entire
    // certificate (TCP buffer at the client will remove duplicate
    // packets)". Sweep the instance-kill time across the handshake,
    // certificate transfer, and data phases.
    for fail_ms in [1030u64, 1060, 1090, 1120, 1200, 1500, 2500] {
        let mut tb = Testbed::build(TestbedConfig {
            seed: 41,
            num_instances: 2,
            num_stores: 2,
            num_backends: 4,
            num_muxes: 2,
            num_services: 1,
            pages_per_site: 10,
            ..TestbedConfig::default()
        });
        let vip = tb.vips[0];
        let rules = tb.equal_split_rules(0);
        tb.set_ssl_policy_at(vip, &rules, 3000, SimTime::from_millis(500));
        tb.engine.run_for(SimTime::from_secs(1));
        let browser = tb.add_browser(
            0,
            yoda::http::BrowserConfig {
                processes: 2,
                max_pages: Some(2),
                tls: true,
                http_timeout: SimTime::from_secs(30),
                ..yoda::http::BrowserConfig::default()
            },
        );
        tb.fail_instance_at(0, SimTime::from_millis(fail_ms));
        tb.engine.run_for(SimTime::from_secs(120));
        let b = tb.engine.node_ref::<yoda::http::BrowserClient>(browser);
        assert_eq!(
            b.broken_flows, 0,
            "TLS flow broke with failure at {fail_ms} ms"
        );
        assert_eq!(b.pages_completed, 4, "failure at {fail_ms} ms");
        assert_eq!(b.timeouts, 0, "failure at {fail_ms} ms");
    }
}

#[test]
fn vip_addition_and_removal_at_runtime() {
    // §5.2 "VIP addition and removal": a new service comes online while
    // others serve traffic; later it is removed (reverse order of
    // addition) and its traffic stops cleanly.
    let mut tb = Testbed::build(TestbedConfig {
        seed: 51,
        num_instances: 2,
        num_stores: 2,
        num_backends: 4,
        num_muxes: 2,
        num_services: 2,
        pages_per_site: 10,
        ..TestbedConfig::default()
    });
    // Remove service 1's VIP before anything runs; re-add it at t=5 s.
    let vip1 = tb.vips[1];
    let controller = tb.controller;
    tb.engine.schedule(SimTime::from_millis(600), move |eng| {
        eng.with_node_ctx::<yoda::core::Controller>(controller, move |c, ctx| {
            c.remove_vip(ctx, vip1);
        });
    });
    let rules1 = tb.equal_split_rules(1);
    tb.set_policy_at(vip1, &rules1, SimTime::from_secs(5));
    tb.engine.run_for(SimTime::from_secs(1));

    // Browser for service 0 (always up) and service 1 (initially absent).
    let b0 = tb.add_browser(
        0,
        yoda::http::BrowserConfig {
            processes: 2,
            max_pages: Some(3),
            ..yoda::http::BrowserConfig::default()
        },
    );
    let b1 = tb.add_browser(
        1,
        yoda::http::BrowserConfig {
            processes: 2,
            max_pages: Some(2),
            http_timeout: SimTime::from_secs(60),
            ..yoda::http::BrowserConfig::default()
        },
    );
    tb.engine.run_for(SimTime::from_secs(180));
    let s0 = tb.engine.node_ref::<yoda::http::BrowserClient>(b0);
    assert_eq!(s0.pages_completed, 6, "service 0 unaffected");
    assert_eq!(s0.broken_flows, 0);
    let s1 = tb.engine.node_ref::<yoda::http::BrowserClient>(b1);
    // Service 1's early SYNs were dropped (VIP absent) but the client's
    // SYN retries land after the VIP is added at t=5 s.
    assert_eq!(s1.pages_completed, 4, "service 1 served after VIP addition");
    assert_eq!(s1.broken_flows, 0);
}
