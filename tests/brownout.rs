//! Store-brownout headline (tier-1): every TCPStore server slowed 10×,
//! none killed.
//!
//! The gray-failure machinery — hedged reads, bounded retries, replica
//! quarantine, and degraded-mode instances with a bounded write-behind
//! buffer — must keep new connections succeeding (≥ 99%) with bounded
//! tail latency, drain the buffer after the heal, and do all of it
//! bit-for-bit reproducibly at any worker count.
//!
//! The testbed uses a deliberately modest store tier (8 ms/op instead of
//! the stock 50 µs) so the 10× brownout saturates it and ops queue past
//! the 100 ms client op timeout — the regime degraded mode exists for.

use yoda::core::instance::YodaInstance;
use yoda::core::testbed::{Testbed, TestbedConfig};
use yoda::http::{BrowserClient, BrowserConfig};
use yoda::netsim::SimTime;
use yoda::tcpstore::StoreServerConfig;

/// The brownout slowdown factor of the headline experiment.
const FACTOR: f64 = 10.0;

/// Everything externally observable about a brownout run; `PartialEq`
/// so the determinism tests compare whole runs at once.
#[derive(Debug, PartialEq, Eq)]
struct BrownoutPrint {
    digest: u64,
    events: u64,
    completed: u64,
    timeouts: u64,
    resets: u64,
    broken: u64,
    degraded_entries: u64,
    wb_enqueued: u64,
    wb_drained: u64,
    wb_dropped: u64,
    wb_queued_end: u64,
    degraded_end: u64,
    shed_reads: u64,
    store_timeouts: u64,
    store_hedges: u64,
    store_retries: u64,
    store_quarantines: u64,
}

impl BrownoutPrint {
    /// Fraction of finished fetches that succeeded.
    fn success(&self) -> f64 {
        let finished = self.completed + self.timeouts + self.resets + self.broken;
        assert!(finished > 0, "run finished no fetches");
        self.completed as f64 / finished as f64
    }
}

/// Runs the brownout scenario and returns its fingerprint plus the p99
/// request latency in ms.
fn brownout_run(threads: usize) -> (BrownoutPrint, f64) {
    let mut tb = Testbed::build(TestbedConfig {
        seed: 0xB0B0,
        num_instances: 3,
        num_stores: 3,
        num_muxes: 2,
        num_backends: 6,
        num_services: 2,
        pages_per_site: 12,
        threads,
        store: StoreServerConfig {
            per_op_service: SimTime::from_millis(8),
            ..StoreServerConfig::default()
        },
        ..TestbedConfig::default()
    });
    tb.engine.run_for(SimTime::from_secs(1));
    let browsers: Vec<_> = (0..2)
        .map(|s| {
            tb.add_browser(
                s,
                // Paper-standard browser: 30 s HTTP timeout ("the least
                // among the popular web browsers we tested"), retries on.
                BrowserConfig {
                    processes: 4,
                    retries: 2,
                    ..BrowserConfig::default()
                },
            )
        })
        .collect();
    // ALL stores brown out at 3 s and heal at 11 s; the run continues to
    // 20 s so the write-behind buffers drain on camera.
    for i in 0..tb.stores.len() {
        tb.slowdown_store_at(i, FACTOR, SimTime::from_secs(3));
        tb.slowdown_store_at(i, 1.0, SimTime::from_secs(11));
    }
    tb.run_for(SimTime::from_secs(20));

    let mut print = BrownoutPrint {
        digest: tb.engine.event_digest(),
        events: tb.engine.events_processed(),
        completed: 0,
        timeouts: 0,
        resets: 0,
        broken: 0,
        degraded_entries: 0,
        wb_enqueued: 0,
        wb_drained: 0,
        wb_dropped: 0,
        wb_queued_end: 0,
        degraded_end: 0,
        shed_reads: 0,
        store_timeouts: 0,
        store_hedges: 0,
        store_retries: 0,
        store_quarantines: 0,
    };
    let mut lat = yoda::netsim::Histogram::new();
    for &b in &browsers {
        let bc = tb.engine.node_ref::<BrowserClient>(b);
        print.completed += bc.completed;
        print.timeouts += bc.timeouts;
        print.resets += bc.resets;
        print.broken += bc.broken_flows;
        lat.merge(&bc.request_latencies);
    }
    let wb_cap = tb.yoda_cfg.write_behind_cap as u64;
    for &i in &tb.instances {
        let inst = tb.engine.node_ref::<YodaInstance>(i);
        print.degraded_entries += inst.degraded_entries;
        print.wb_enqueued += inst.wb_enqueued;
        print.wb_drained += inst.wb_drained;
        print.wb_dropped += inst.wb_dropped;
        let queued = inst.write_behind_len() as u64;
        print.wb_queued_end += queued;
        assert!(
            queued <= wb_cap,
            "write-behind queue {queued} over cap {wb_cap}"
        );
        print.degraded_end += u64::from(inst.is_degraded());
        print.shed_reads += inst.shed_reads;
        let sc = inst.store_client();
        print.store_timeouts += sc.timeouts;
        print.store_hedges += sc.hedges;
        print.store_retries += sc.retries;
        print.store_quarantines += sc.quarantines;
    }
    // Write-behind conservation: every enqueued record is drained,
    // dropped, or still queued — no silent losses.
    assert_eq!(
        print.wb_enqueued,
        print.wb_drained + print.wb_dropped + print.wb_queued_end,
        "write-behind records unaccounted for"
    );
    (print, lat.percentile(99.0).unwrap_or(0.0))
}

/// The headline: all stores 10× slow for 8 s, none killed — the testbed
/// keeps serving. New-connection success ≥ 99%, p99 bounded by the
/// client's own HTTP budget, degraded mode demonstrably engaged, and the
/// write-behind buffer fully drained after the heal.
#[test]
fn all_stores_10x_slow_keeps_serving() {
    let (print, p99_ms) = brownout_run(0);
    assert!(
        print.success() >= 0.99,
        "new-connection success {:.4} < 0.99\n{print:#?}",
        print.success()
    );
    assert!(
        p99_ms <= 30_000.0,
        "p99 {p99_ms} ms exceeds the 30 s HTTP budget\n{print:#?}"
    );
    assert_eq!(print.broken, 0, "brownout broke flows\n{print:#?}");
    // The run must actually exercise the gray machinery, not coast on an
    // over-provisioned store tier.
    assert!(print.store_timeouts > 0, "no store op timed out\n{print:#?}");
    assert!(print.store_retries > 0, "no write was retried\n{print:#?}");
    assert!(print.degraded_entries > 0, "degraded mode never engaged\n{print:#?}");
    assert!(print.wb_enqueued > 0, "nothing was written behind\n{print:#?}");
    // Brownout heal ⇒ write-behind drains: by run end (9 s after the
    // heal) every instance is re-armed and its buffer replayed.
    assert_eq!(print.degraded_end, 0, "instance still degraded at end\n{print:#?}");
    assert_eq!(print.wb_queued_end, 0, "write-behind never drained\n{print:#?}");
}

/// Hedged and retried store traffic is bit-for-bit reproducible: two
/// identical runs produce the same digest, event count, and counters.
/// (Hedge delays come from latency EWMAs and retry jitter from seeded
/// per-node streams — nothing wall-clock ever leaks in.)
#[test]
fn brownout_run_is_byte_identical() {
    let (a, _) = brownout_run(0);
    let (b, _) = brownout_run(0);
    assert!(
        a.store_timeouts > 0 && a.store_retries > 0,
        "determinism run never exercised the retry path\n{a:#?}"
    );
    assert_eq!(a, b, "brownout run diverged across identical replays");
}

/// The brownout replays identically under the sharded executor at 1, 2,
/// and 4 workers: backoff timers, hedge timers, and degraded-mode entry
/// all happen in virtual time on per-node state, so worker count cannot
/// reorder their effects.
#[test]
fn brownout_identical_at_1_2_4_workers() {
    let (reference, _) = brownout_run(0);
    for threads in [1, 2, 4] {
        let (print, _) = brownout_run(threads);
        assert_eq!(
            print, reference,
            "brownout run diverged at {threads} workers"
        );
    }
}
