//! Workspace-level tidy gate: `cargo test -q` from the repo root must
//! fail if any determinism/robustness invariant is violated anywhere in
//! the tree. See `crates/tidy` for the rules and `tidy.allow` for the
//! justified exceptions.

#[test]
fn workspace_is_tidy() {
    let root = yoda_tidy::workspace_root().expect("workspace root");
    let report = yoda_tidy::run(&root);
    if !report.is_clean() {
        let mut msg = String::from("tidy violations:\n");
        for v in &report.violations {
            msg.push_str(&format!("  {v}\n"));
        }
        for e in &report.allowlist_errors {
            msg.push_str(&format!("  {e}\n"));
        }
        msg.push_str("fix the code, or add a justified entry to tidy.allow");
        panic!("{msg}");
    }
}
