//! Seeded chaos matrix (tier-1).
//!
//! Each seed deterministically generates a fault plan and replays it
//! against the full testbed. Survivable plans respect Yoda's §6
//! availability preconditions and must produce **zero** user-visible
//! breakage; unconstrained plans violate them on purpose and must only
//! degrade gracefully (every fetch resolves in bounded time, nothing
//! hangs, no flow vanishes from the conservation counters).
//!
//! A failing seed prints its full plan; rerun just that seed with e.g.
//! `CHAOS_SEED=13 cargo test --release --test chaos_matrix one_seed`.
//! Seed counts scale up via `CHAOS_SURVIVABLE_SEEDS` /
//! `CHAOS_UNCONSTRAINED_SEEDS` for longer local or CI soak runs, and
//! `CHAOS_THREADS=N` runs every replay under the sharded executor at
//! `N` workers — per-node RNG streams make the digests identical to the
//! single-threaded run, so CI exercises both executors with one matrix.

use yoda::chaos::{run_plan, run_seed, ChaosPlan, ChaosScenario, Fault, FaultKind};
use yoda::netsim::SimTime;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Worker-count override for the whole matrix (0 = single-threaded).
fn threads() -> usize {
    env_u64("CHAOS_THREADS", 0) as usize
}

fn assert_seed_ok(seed: u64, sc: &ChaosScenario) {
    let report = run_seed(seed, sc);
    assert!(
        report.ok(),
        "chaos seed {seed} violated invariants — the plan below regenerates \
         bit-for-bit from the seed alone\n{}",
        report.render()
    );
}

#[test]
fn survivable_seeds_keep_every_flow_alive() {
    let n = env_u64("CHAOS_SURVIVABLE_SEEDS", 20);
    let mut sc = ChaosScenario::survivable();
    sc.threads = threads();
    for seed in 0..n {
        assert_seed_ok(seed, &sc);
    }
}

#[test]
fn unconstrained_seeds_degrade_gracefully() {
    let n = env_u64("CHAOS_UNCONSTRAINED_SEEDS", 5);
    let mut sc = ChaosScenario::unconstrained();
    sc.threads = threads();
    // Disjoint seed range from the survivable matrix, so the two tests
    // never mistake one another's plans.
    for seed in 1000..1000 + n {
        assert_seed_ok(seed, &sc);
    }
}

/// One-command repro hook: replays exactly one seed (survivable by
/// default, unconstrained when `CHAOS_UNCONSTRAINED=1`).
#[test]
fn one_seed() {
    let Ok(seed) = std::env::var("CHAOS_SEED") else {
        return;
    };
    let Ok(seed) = seed.parse::<u64>() else {
        panic!("CHAOS_SEED must be an integer");
    };
    let mut sc = if std::env::var("CHAOS_UNCONSTRAINED").is_ok() {
        ChaosScenario::unconstrained()
    } else {
        ChaosScenario::survivable()
    };
    sc.threads = threads();
    let report = run_seed(seed, &sc);
    println!("{}", report.render());
    assert!(report.ok(), "seed {seed} failed\n{}", report.render());
}

/// Runs a single hand-built fault against the survivable testbed with
/// the mux fast path on, and checks both the availability invariants and
/// that the fast path actually carried traffic (so the kill really hit
/// flows with splices installed mid-transfer).
fn assert_splice_survives(kind: FaultKind) {
    let mut sc = ChaosScenario::survivable();
    sc.splice = true;
    sc.threads = threads();
    let plan = ChaosPlan {
        seed: 0,
        survivable: true,
        faults: vec![Fault {
            at: SimTime::from_secs(10),
            duration: SimTime::from_secs(8),
            kind,
        }],
    };
    let report = run_plan(&plan, &sc);
    assert!(
        report.ok(),
        "splice chaos run violated invariants\n{}",
        report.render()
    );
    assert!(
        report.spliced > 0,
        "no packet took the mux fast path\n{}",
        report.render()
    );
    assert!(
        report.splices_installed > 0,
        "instances never installed a splice\n{}",
        report.render()
    );
}

/// Mux death with splices installed: entries die with the mux, traffic
/// re-steers to the surviving mux's slow path, and instances re-install
/// — no client-visible byte lost or duplicated (browser conservation).
#[test]
fn splice_survives_mux_kill_mid_transfer() {
    assert_splice_survives(FaultKind::MuxCrash { i: 0 });
}

/// Instance death with splices installed: the recovering instance
/// rebuilds flow state from TCPStore records and re-splices.
#[test]
fn splice_survives_instance_kill_mid_transfer() {
    assert_splice_survives(FaultKind::InstanceCrash { i: 0 });
}

/// The full seeded survivable matrix also holds with the fast path on
/// (a smaller slice than the default matrix — the faults are the same
/// generator, just replayed over spliced steady-state forwarding).
#[test]
fn survivable_seeds_hold_with_splicing() {
    let n = env_u64("CHAOS_SPLICE_SEEDS", 5);
    let mut sc = ChaosScenario::survivable();
    sc.splice = true;
    sc.threads = threads();
    for seed in 500..500 + n {
        assert_seed_ok(seed, &sc);
    }
}

/// Gray-fault matrix: the first `CHAOS_GRAY_SEEDS` (default 20)
/// survivable plans that actually contain a gray fault (slowdown, link
/// degrade, or asymmetric partition) must hold the zero-breakage
/// invariants — slow-but-alive components are routed around, never
/// surfaced to clients. The generator's survivable budget caps the
/// slowdown intensity (factor and factor×duration), so these plans are
/// harsh but inside §6's availability preconditions.
#[test]
fn gray_fault_seeds_keep_every_flow_alive() {
    let n = env_u64("CHAOS_GRAY_SEEDS", 20);
    let mut sc = ChaosScenario::survivable();
    sc.threads = threads();
    let is_gray = |k: FaultKind| {
        matches!(
            k,
            FaultKind::NodeSlowdown { .. }
                | FaultKind::LinkDegrade { .. }
                | FaultKind::AsymmetricPartition { .. }
        )
    };
    // Disjoint seed range (2000..) from the other matrices; seeds whose
    // plan drew no gray fault are skipped, so every run here exercises
    // the gray machinery.
    let mut ran = 0;
    for seed in 2000..4000 {
        if ran >= n {
            break;
        }
        let plan = ChaosPlan::generate(seed, &sc.shape(), &sc.budget);
        if !plan.faults.iter().any(|f| is_gray(f.kind)) {
            continue;
        }
        assert_seed_ok(seed, &sc);
        ran += 1;
    }
    assert_eq!(ran, n, "seed range 2000..4000 yielded too few gray plans");
}

/// The same seed must replay byte-identically: identical engine digest,
/// identical event count, identical rendered report.
#[test]
fn fixed_seed_chaos_run_is_byte_identical() {
    let sc = ChaosScenario::survivable();
    let a = run_seed(7, &sc);
    let b = run_seed(7, &sc);
    assert_eq!(a.digest, b.digest, "digest diverged across identical runs");
    assert_eq!(a.events, b.events);
    assert_eq!(a.render(), b.render());
}
