//! Failure-injection matrix: kill a Yoda instance at a sweep of times so
//! the crash lands in every phase of Figure 3/5 — during storage-a,
//! between SYN-ACK and the header, during the backend handshake, during
//! storage-b, and throughout the tunneling phase. The paper's invariant:
//! with at least one live instance and a TCPStore quorum, **no
//! established flow is ever broken**.

use yoda::core::testbed::{Testbed, TestbedConfig};
use yoda::core::YodaInstance;
use yoda::http::{BrowserClient, BrowserConfig};
use yoda::netsim::SimTime;

/// Runs one flow with an instance failure at `fail_ms` (absolute), and
/// returns (completed, broken, recovered).
fn run_with_failure_at(fail_ms: u64) -> (u64, u64, u64) {
    let mut tb = Testbed::build(TestbedConfig {
        seed: 5,
        num_instances: 2,
        num_stores: 3,
        num_backends: 4,
        num_muxes: 2,
        num_services: 1,
        pages_per_site: 10,
        ..TestbedConfig::default()
    });
    // Let the control plane settle before the client starts at t=1s; the
    // flow's phases then happen at deterministic offsets from 1s.
    tb.engine.run_for(SimTime::from_secs(1));
    let browser = tb.add_browser(
        0,
        BrowserConfig {
            processes: 2,
            max_pages: Some(2),
            http_timeout: SimTime::from_secs(30),
            ..BrowserConfig::default()
        },
    );
    // Fail both? No: fail instance 0 only; instance 1 must take over.
    tb.fail_instance_at(0, SimTime::from_millis(fail_ms));
    tb.engine.run_for(SimTime::from_secs(120));
    let recovered = tb
        .instances
        .iter()
        .filter(|&&i| tb.engine.is_alive(i))
        .map(|&i| tb.engine.node_ref::<YodaInstance>(i).recoveries)
        .sum();
    let b = tb.engine.node_ref::<BrowserClient>(browser);
    (b.completed, b.broken_flows, recovered)
}

#[test]
fn no_flow_breaks_wherever_the_failure_lands() {
    // The flow timeline (WAN RTT ≈ 130 ms): SYN arrives ~1.065 s,
    // storage-a ~1.0656 s, SYN-ACK sent, header arrives ~1.196 s, backend
    // handshake + storage-b ~1.198 s, tunneling until ~1.5-3 s, then more
    // pages. Sweep the kill time across all of it.
    let mut any_recovery = false;
    for fail_ms in (1040..1400).step_by(30).chain([1500, 1800, 2500, 4000]) {
        let (completed, broken, recovered) = run_with_failure_at(fail_ms);
        assert_eq!(
            broken, 0,
            "failure at {fail_ms} ms broke a flow (completed {completed})"
        );
        assert!(completed > 0, "failure at {fail_ms} ms: nothing completed");
        any_recovery |= recovered > 0;
    }
    assert!(any_recovery, "the sweep never exercised TCPStore recovery");
}

/// Mirrors the instance sweep for TCPStore: kill replica server 0 at a
/// sweep of times across every flow phase, then an instance 200 ms
/// later, so whatever flow state was written to the dead replica must
/// be recovered from its surviving partner (§6: keys are not
/// re-replicated; reads fall back).
#[test]
fn no_flow_breaks_wherever_the_store_kill_lands() {
    for fail_ms in (1040..1400).step_by(60).chain([1800, 2500]) {
        let mut tb = Testbed::build(TestbedConfig {
            seed: 11,
            num_instances: 2,
            num_stores: 3,
            num_backends: 4,
            num_muxes: 2,
            num_services: 1,
            pages_per_site: 10,
            ..TestbedConfig::default()
        });
        tb.engine.run_for(SimTime::from_secs(1));
        let browser = tb.add_browser(
            0,
            BrowserConfig {
                processes: 2,
                max_pages: Some(2),
                http_timeout: SimTime::from_secs(30),
                ..BrowserConfig::default()
            },
        );
        tb.fail_store_at(0, SimTime::from_millis(fail_ms));
        tb.fail_instance_at(0, SimTime::from_millis(fail_ms + 200));
        tb.engine.run_for(SimTime::from_secs(120));
        let b = tb.engine.node_ref::<BrowserClient>(browser);
        assert_eq!(
            b.broken_flows, 0,
            "store kill at {fail_ms} ms broke a flow (completed {})",
            b.completed
        );
        assert_eq!(b.pages_completed, 4, "store kill at {fail_ms} ms");
    }
}

/// Mirrors the instance sweep for the L4 layer: kill mux 0 at a sweep
/// of times across every flow phase. Re-hashed flows land on surviving
/// muxes; any that reach a different Yoda instance recover through
/// TCPStore — no flow may break, whichever phase the kill lands in.
#[test]
fn no_flow_breaks_wherever_the_mux_kill_lands() {
    for fail_ms in (1040..1400).step_by(60).chain([1800, 2500]) {
        let mut tb = Testbed::build(TestbedConfig {
            seed: 12,
            num_instances: 2,
            num_stores: 3,
            num_backends: 4,
            num_muxes: 3,
            num_services: 1,
            pages_per_site: 10,
            ..TestbedConfig::default()
        });
        tb.engine.run_for(SimTime::from_secs(1));
        let browser = tb.add_browser(
            0,
            BrowserConfig {
                processes: 2,
                max_pages: Some(2),
                http_timeout: SimTime::from_secs(30),
                ..BrowserConfig::default()
            },
        );
        tb.fail_mux_at(0, SimTime::from_millis(fail_ms));
        tb.engine.run_for(SimTime::from_secs(120));
        let b = tb.engine.node_ref::<BrowserClient>(browser);
        assert_eq!(
            b.broken_flows, 0,
            "mux kill at {fail_ms} ms broke a flow (completed {})",
            b.completed
        );
        assert_eq!(b.pages_completed, 4, "mux kill at {fail_ms} ms");
    }
}

#[test]
fn flows_survive_store_server_failure() {
    // §6: when a Memcached server fails its keys are not re-replicated;
    // reads fall back to the surviving replica (K=2).
    let mut tb = Testbed::build(TestbedConfig {
        seed: 6,
        num_instances: 3,
        num_stores: 3,
        num_backends: 4,
        num_muxes: 2,
        num_services: 1,
        pages_per_site: 10,
        ..TestbedConfig::default()
    });
    tb.engine.run_for(SimTime::from_secs(1));
    let browser = tb.add_browser(
        0,
        BrowserConfig {
            processes: 4,
            max_pages: Some(2),
            ..BrowserConfig::default()
        },
    );
    // Kill one store server early, and an instance later so recovery must
    // read from the surviving replicas.
    let store = tb.stores[0];
    tb.engine
        .schedule(SimTime::from_millis(1500), move |eng| eng.fail_node(store));
    tb.fail_instance_at(0, SimTime::from_millis(2500));
    tb.engine.run_for(SimTime::from_secs(120));
    let b = tb.engine.node_ref::<BrowserClient>(browser);
    assert_eq!(b.broken_flows, 0, "store failure must not break flows");
    assert_eq!(b.pages_completed, 8);
}

#[test]
fn flows_survive_mux_failure() {
    // §9: "L4 LB has built-in resilience to instance failures". A dead
    // mux's flows re-hash to surviving muxes; any flow that lands on a
    // different Yoda instance recovers through TCPStore.
    let mut tb = Testbed::build(TestbedConfig {
        seed: 8,
        num_instances: 3,
        num_stores: 3,
        num_backends: 4,
        num_muxes: 3,
        num_services: 1,
        pages_per_site: 10,
        ..TestbedConfig::default()
    });
    tb.engine.run_for(SimTime::from_secs(1));
    let browser = tb.add_browser(
        0,
        BrowserConfig {
            processes: 4,
            max_pages: Some(2),
            ..BrowserConfig::default()
        },
    );
    let mux = tb.muxes[0];
    tb.engine.schedule(SimTime::from_millis(2000), move |eng| {
        eng.fail_node(mux);
    });
    tb.engine.run_for(SimTime::from_secs(120));
    let b = tb.engine.node_ref::<BrowserClient>(browser);
    assert_eq!(b.broken_flows, 0, "mux failure must not break flows");
    assert_eq!(b.pages_completed, 8);
}

#[test]
fn backend_failure_terminates_its_flows_quickly() {
    // §5.2: when a backend dies, its connections are terminated (the
    // clients see a reset, not a 30 s hang) and new requests avoid it.
    let mut tb = Testbed::build(TestbedConfig {
        seed: 10,
        num_instances: 2,
        num_stores: 2,
        num_backends: 4,
        num_muxes: 2,
        num_services: 1,
        pages_per_site: 10,
        ..TestbedConfig::default()
    });
    tb.engine.run_for(SimTime::from_secs(1));
    // Long downloads so flows are mid-flight at the failure.
    let largest = tb
        .catalog
        .site(0)
        .objects
        .iter()
        .max_by_key(|o| o.size)
        .map(|o| o.path.clone())
        .expect("objects");
    let browser = tb.add_browser(
        0,
        BrowserConfig {
            processes: 8,
            max_pages: Some(2),
            fixed_object: Some(largest),
            http_timeout: SimTime::from_secs(30),
            retries: 1,
            ..BrowserConfig::default()
        },
    );
    tb.fail_backend_at(0, SimTime::from_millis(2500));
    tb.engine.run_for(SimTime::from_secs(120));
    let b = tb.engine.node_mut::<BrowserClient>(browser);
    // Flows through the dead backend were reset and retried; nothing hung
    // to the HTTP timeout and everything eventually completed.
    assert_eq!(b.timeouts, 0, "no flow may hang to the HTTP timeout");
    assert_eq!(b.broken_flows, 0);
    assert_eq!(b.pages_completed, 16);
    assert!(b.resets > 0, "mid-flight flows got reset notifications");
    assert!(b.request_latencies.max().unwrap_or(0.0) < 25_000.0);
}
