//! Compile-time shard-safety witnesses.
//!
//! The sharded multi-core engine (ROADMAP #1) moves the engine core,
//! queued control closures, and per-node state between worker threads at
//! epoch barriers. That is only sound if those types are `Send`, and the
//! property must not be able to regress silently: `yoda-tidy`'s
//! shard-safety rules catch the constructs lexically, and these witnesses
//! make the final composed guarantee a compile error to break — adding an
//! `Rc` field anywhere inside `Engine` or a node type fails `cargo test`
//! before any test runs.
//!
//! The functions are deliberately empty: instantiating `assert_send::<T>`
//! is the whole test. There is nothing to execute, so each `#[test]` body
//! only proves the file compiled.

use yoda::chaos::StoreWitness;
use yoda::core::{Controller, YodaInstance};
use yoda::http::{BrowserClient, OriginServer, RateClient};
use yoda::l4lb::{EdgeRouter, Mux};
use yoda::netsim::addrmap::AddrMap;
use yoda::netsim::shard::{EpochBarrier, ShardMailbox, ShardWorker};
use yoda::netsim::wheel::TimerWheel;
use yoda::netsim::{Engine, NameId, Node, SymbolTable, TraceEvent, TraceSink};
use yoda::proxy::ProxyInstance;
use yoda::tcpstore::StoreServer;

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

/// The engine itself — event queue, timer wheel, address map, trace sink,
/// symbol table, node slots, and every queued control closure — must be
/// able to move onto a shard worker thread whole.
#[test]
fn engine_and_internals_are_send() {
    assert_send::<Engine>();
    assert_send::<TimerWheel>();
    assert_send::<AddrMap>();
    assert_send::<TraceSink>();
    assert_send::<SymbolTable>();
}

/// Trace events cross epoch barriers between workers when shards merge
/// their timelines; the interned name id is plain data, so the whole
/// event is both `Send` and `Sync`.
#[test]
fn trace_events_are_send_and_sync() {
    assert_send::<TraceEvent>();
    assert_sync::<TraceEvent>();
    assert_send::<NameId>();
    assert_sync::<NameId>();
}

/// `Node: Send` is a supertrait bound, so any boxed node — and therefore
/// the engine's node table — is `Send` by construction. This witness
/// pins the bound itself; the per-type witnesses below pin the concrete
/// state structs so a violation names the offending type directly.
#[test]
fn boxed_nodes_are_send() {
    assert_send::<Box<dyn Node>>();
}

/// The sharded executor's own moving parts. A `ShardWorker` (nodes,
/// timer wheels, per-node RNG streams, effect log) is handed to a
/// spawned scope thread, so it must be `Send`; the mailbox additionally
/// crosses back to the coordinator for replay. The `EpochBarrier` is
/// *shared* by reference between the coordinator and every worker
/// simultaneously, so it needs the stronger `Sync`.
#[test]
fn shard_executor_types_are_send_and_sync() {
    assert_send::<ShardWorker>();
    assert_send::<ShardMailbox>();
    assert_sync::<EpochBarrier>();
    assert_send::<EpochBarrier>();
}

/// Every product node type: the paper's data plane (edge router, mux,
/// L7 instances, backends) and control plane (controller, TCPStore,
/// chaos witness). These are the states a shard worker owns and the
/// epoch barrier migrates.
#[test]
fn per_node_state_types_are_send() {
    assert_send::<EdgeRouter>();
    assert_send::<Mux>();
    assert_send::<YodaInstance>();
    assert_send::<Controller>();
    assert_send::<ProxyInstance>();
    assert_send::<OriginServer>();
    assert_send::<BrowserClient>();
    assert_send::<RateClient>();
    assert_send::<StoreServer>();
    assert_send::<StoreWitness>();
}
