//! Decoder robustness: every wire-format parser in the workspace must
//! reject (not panic on) arbitrary garbage, truncations, and bit flips.

use bytes::Bytes;
use proptest::prelude::*;
use yoda::core::flowstate::{FlowRecord, SynRecord};
use yoda::core::rules::{Rule, RuleTable};
use yoda::core::InstanceCtrl;
use yoda::l4lb::CtrlMsg;
use yoda::netsim::Packet;
use yoda::tcp::Segment;
use yoda::tcpstore::{StoreRequest, StoreResponse};
use yoda::trace::Trace;

proptest! {
    /// No decoder panics on arbitrary byte strings.
    #[test]
    fn decoders_never_panic_on_garbage(raw in proptest::collection::vec(any::<u8>(), 0..600)) {
        let b = Bytes::from(raw.clone());
        let _ = Segment::decode(b.clone());
        let _ = Packet::decode(b.clone());
        let _ = StoreRequest::decode(&b);
        let _ = StoreResponse::decode(&b);
        let _ = CtrlMsg::decode(&b);
        let _ = InstanceCtrl::decode(&b);
        let _ = SynRecord::decode(&b);
        let _ = FlowRecord::decode(&b);
    }

    /// Bit-flipped valid messages either still decode or are rejected —
    /// never a panic, and length fields cannot cause out-of-bounds reads.
    #[test]
    fn decoders_survive_bit_flips(
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        let seg = Segment {
            src_port: 40000,
            dst_port: 80,
            seq: yoda::tcp::SeqNum::new(12345),
            ack: yoda::tcp::SeqNum::new(678),
            flags: yoda::tcp::Flags::ACK,
            window: 65535,
            payload: Bytes::from_static(b"GET / HTTP/1.0\r\n\r\n"),
        };
        let mut enc = seg.encode().to_vec();
        let idx = flip_byte % enc.len();
        enc[idx] ^= 1 << flip_bit;
        let _ = Segment::decode(Bytes::from(enc));

        let req = StoreRequest {
            req_id: 7,
            op: yoda::tcpstore::StoreOp::Set,
            key: Bytes::from_static(b"flow:x"),
            value: Bytes::from_static(b"value-bytes"),
        };
        let mut enc = req.encode().to_vec();
        let idx = flip_byte % enc.len();
        enc[idx] ^= 1 << flip_bit;
        let _ = StoreRequest::decode(&Bytes::from(enc));
    }

    /// Rule/DSL and trace parsers reject arbitrary text without panicking.
    #[test]
    fn text_parsers_never_panic(text in "[ -~\\n]{0,300}") {
        let _ = Rule::parse(&text);
        let _ = RuleTable::parse(&text);
        let _ = Trace::from_csv(&text);
    }
}
