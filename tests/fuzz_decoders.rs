//! Decoder robustness: every wire-format parser in the workspace must
//! reject (not panic on) arbitrary garbage, truncations, and bit flips.
//!
//! Runs on the in-tree deterministic PRNG — every run fuzzes the same
//! inputs, so a failure here always reproduces.

use bytes::Bytes;
use yoda::core::flowstate::{FlowRecord, SynRecord};
use yoda::core::rules::{Rule, RuleTable};
use yoda::core::InstanceCtrl;
use yoda::l4lb::CtrlMsg;
use yoda::netsim::rng::Rng;
use yoda::netsim::Packet;
use yoda::tcp::Segment;
use yoda::tcpstore::{StoreRequest, StoreResponse};
use yoda::trace::Trace;

/// No decoder panics on arbitrary byte strings.
#[test]
fn decoders_never_panic_on_garbage() {
    let mut rng = Rng::seed_from_u64(0xDEC0DE);
    for _ in 0..512 {
        let len = rng.gen_range(0..600usize);
        let raw: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=u8::MAX)).collect();
        let b = Bytes::from(raw);
        let _ = Segment::decode(b.clone());
        let _ = Packet::decode(b.clone());
        let _ = StoreRequest::decode(&b);
        let _ = StoreResponse::decode(&b);
        let _ = CtrlMsg::decode(&b);
        let _ = InstanceCtrl::decode(&b);
        let _ = SynRecord::decode(&b);
        let _ = FlowRecord::decode(&b);
    }
}

/// Bit-flipped valid messages either still decode or are rejected —
/// never a panic, and length fields cannot cause out-of-bounds reads.
#[test]
fn decoders_survive_bit_flips() {
    let seg = Segment {
        src_port: 40000,
        dst_port: 80,
        seq: yoda::tcp::SeqNum::new(12345),
        ack: yoda::tcp::SeqNum::new(678),
        flags: yoda::tcp::Flags::ACK,
        window: 65535,
        payload: Bytes::from_static(b"GET / HTTP/1.0\r\n\r\n"),
    };
    let req = StoreRequest {
        req_id: 7,
        op: yoda::tcpstore::StoreOp::Set,
        key: Bytes::from_static(b"flow:x"),
        value: Bytes::from_static(b"value-bytes"),
    };
    // Exhaustive single-bit flips over the first 64 bytes (the proptest
    // original sampled this space; exhaustive is both cheaper and total).
    for flip_byte in 0usize..64 {
        for flip_bit in 0u8..8 {
            let mut enc = seg.encode().to_vec();
            let idx = flip_byte % enc.len();
            enc[idx] ^= 1 << flip_bit;
            let _ = Segment::decode(Bytes::from(enc));

            let mut enc = req.encode().to_vec();
            let idx = flip_byte % enc.len();
            enc[idx] ^= 1 << flip_bit;
            let _ = StoreRequest::decode(&Bytes::from(enc));
        }
    }
}

/// The splice-install/revoke control variants specifically: truncations,
/// overlong payloads, and tag-prefixed garbage all decode to `None` (or a
/// valid message for benign flips) — never a panic. These messages are
/// emitted by instances at tunnel setup and parsed on the mux hot path,
/// so decoder robustness is part of the fast path's safety story.
#[test]
fn splice_ctrl_variants_reject_malformed() {
    let install = CtrlMsg::SpliceInstall {
        from: yoda::netsim::Endpoint::new(yoda::netsim::Addr::new(172, 16, 0, 9), 40_001),
        to: yoda::netsim::Endpoint::new(yoda::netsim::Addr::new(100, 0, 0, 1), 80),
        new_src: yoda::netsim::Endpoint::new(yoda::netsim::Addr::new(100, 0, 0, 1), 40_001),
        new_dst: yoda::netsim::Endpoint::new(yoda::netsim::Addr::new(10, 1, 0, 7), 80),
        seq_add: 0xfeed_f00d,
        ack_add: 0x0bad_cafe,
    };
    let remove = CtrlMsg::SpliceRemove {
        from: yoda::netsim::Endpoint::new(yoda::netsim::Addr::new(10, 1, 0, 7), 80),
        to: yoda::netsim::Endpoint::new(yoda::netsim::Addr::new(100, 0, 0, 1), 40_001),
    };
    for msg in [install, remove] {
        let enc = msg.encode();
        assert_eq!(CtrlMsg::decode(&enc).as_ref(), Some(&msg));
        // Every truncation point rejects.
        for cut in 0..enc.len() {
            let _ = CtrlMsg::decode(&enc.slice(0..cut));
            if cut > 0 {
                assert!(CtrlMsg::decode(&enc.slice(0..cut)).is_none(), "cut={cut}");
            }
        }
        // Overlong payloads reject (strict length check).
        for extra in 1..4usize {
            let mut long = enc.to_vec();
            long.extend(vec![0xAAu8; extra]);
            assert!(CtrlMsg::decode(&Bytes::from(long)).is_none());
        }
    }
    // Tag-prefixed garbage: correct length, arbitrary bytes — must parse
    // into *some* message or reject, never panic.
    let mut rng = Rng::seed_from_u64(0x5EED_5EED);
    for tag in [4u8, 5u8] {
        let body_len = if tag == 4 { 32 } else { 12 };
        for _ in 0..256 {
            let mut raw = vec![tag];
            raw.extend((0..body_len).map(|_| rng.gen_range(0..=u8::MAX)));
            let decoded = CtrlMsg::decode(&Bytes::from(raw));
            assert!(decoded.is_some(), "well-sized tag {tag} body must decode");
        }
        // And at every wrong length, including empty.
        for len in (0..body_len + 4).filter(|&l| l != body_len) {
            let mut raw = vec![tag];
            raw.extend((0..len).map(|_| rng.gen_range(0..=u8::MAX)));
            assert!(CtrlMsg::decode(&Bytes::from(raw)).is_none());
        }
    }
}

/// Rule/DSL and trace parsers reject arbitrary text without panicking.
#[test]
fn text_parsers_never_panic() {
    let mut rng = Rng::seed_from_u64(0x7E47);
    for _ in 0..512 {
        let len = rng.gen_range(0..300usize);
        let text: String = (0..len)
            .map(|_| {
                if rng.gen_bool(0.05) {
                    '\n'
                } else {
                    rng.gen_range(b' '..=b'~') as char
                }
            })
            .collect();
        let _ = Rule::parse(&text);
        let _ = RuleTable::parse(&text);
        let _ = Trace::from_csv(&text);
    }
}
