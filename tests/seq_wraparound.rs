//! Sequence-number arithmetic at the 2³² boundary.
//!
//! Yoda's whole tunneling scheme (paper Figure 4) is a fixed offset
//! `delta = C − S` applied modulo 2³² to every forwarded segment. These
//! tests pin the wrap behaviour down hard: ordering, ranges, translation
//! round-trips, and ISN generation must all compose correctly when a
//! flow's sequence space straddles the wrap point — a case that shows up
//! in production roughly once per 4 GiB transferred per connection.

use yoda::core::isn::syn_ack_isn;
use yoda::netsim::{Addr, Endpoint};
use yoda::tcp::SeqNum;

const WRAP_NEIGHBOURHOOD: [u32; 9] = [
    0,
    1,
    2,
    u32::MAX - 2,
    u32::MAX - 1,
    u32::MAX,
    1 << 31,
    (1 << 31) - 1,
    (1 << 31) + 1,
];

#[test]
fn addition_wraps_through_the_boundary() {
    assert_eq!(SeqNum::new(u32::MAX) + 1, SeqNum::new(0));
    assert_eq!(SeqNum::new(u32::MAX - 1) + 5, SeqNum::new(3));
    let mut s = SeqNum::new(u32::MAX - 3);
    s += 10;
    assert_eq!(s, SeqNum::new(6));
}

#[test]
fn subtraction_measures_distance_across_the_boundary() {
    // 3 − (MAX−1) ≡ 5 (the short way around the circle).
    assert_eq!(SeqNum::new(3) - SeqNum::new(u32::MAX - 1), 5);
    assert_eq!(SeqNum::new(0) - SeqNum::new(u32::MAX), 1);
    assert_eq!(SeqNum::new(0) - SeqNum::new(0), 0);
}

#[test]
fn modular_ordering_across_the_boundary() {
    let before = SeqNum::new(u32::MAX - 10);
    let after = SeqNum::new(10);
    assert!(before.lt(after), "MAX-10 is before 10 after a wrap");
    assert!(after.gt(before));
    assert!(before.le(before));
    assert!(before.ge(before));
    // Ordering is only defined within a half-circle; exactly 2³¹ apart is
    // the ambiguous antipode and must not claim both directions.
    let x = SeqNum::new(0);
    let anti = SeqNum::new(1 << 31);
    assert!(!(x.lt(anti) && anti.lt(x)), "antipode ordered both ways");
}

#[test]
fn in_range_spanning_the_boundary() {
    let lo = SeqNum::new(u32::MAX - 100);
    let hi = SeqNum::new(100);
    assert!(SeqNum::new(u32::MAX).in_range(lo, hi));
    assert!(SeqNum::new(0).in_range(lo, hi));
    assert!(SeqNum::new(50).in_range(lo, hi));
    assert!(!SeqNum::new(200).in_range(lo, hi));
    assert!(!SeqNum::new(u32::MAX - 200).in_range(lo, hi));
}

/// Figure 4's per-segment translation: seq' = seq + delta must be a
/// bijection that round-trips for every delta, including ones that push
/// sequences through the wrap.
#[test]
fn translation_roundtrips_through_the_boundary() {
    for &raw in &WRAP_NEIGHBOURHOOD {
        let seq = SeqNum::new(raw);
        for &other in &WRAP_NEIGHBOURHOOD {
            let delta = SeqNum::new(other).offset_from(seq);
            let there = seq.translate(delta);
            assert_eq!(there, SeqNum::new(other), "translate lands on target");
            let back = there.translate(0u32.wrapping_sub(delta));
            assert_eq!(back, seq, "inverse delta returns to start");
        }
    }
}

/// A simulated 4-GiB-plus transfer: advancing by MSS-sized steps from
/// just below the wrap point stays monotone in modular order throughout.
#[test]
fn long_transfer_stays_monotone_across_the_wrap() {
    let mss = 1460u32;
    let mut seq = SeqNum::new(u32::MAX - 10 * mss);
    let mut prev = seq;
    for _ in 0..100 {
        seq += mss;
        assert!(prev.lt(seq), "stream went backwards at {prev} -> {seq}");
        assert_eq!(seq - prev, mss);
        prev = seq;
    }
    assert!(seq.raw() < u32::MAX - 10 * mss, "walked through the wrap");
}

#[test]
fn isn_is_deterministic_and_distinct_per_flow() {
    let vip = Endpoint::new(Addr::new(100, 0, 0, 1), 80);
    let c1 = Endpoint::new(Addr::new(172, 16, 0, 1), 40_000);
    let c2 = Endpoint::new(Addr::new(172, 16, 0, 1), 40_001);
    // Stateless regeneration (§4.1): any instance, any time, same ISN.
    assert_eq!(syn_ack_isn(c1, vip), syn_ack_isn(c1, vip));
    // Neighbouring flows must not share sequence spaces.
    assert_ne!(syn_ack_isn(c1, vip), syn_ack_isn(c2, vip));
    assert_ne!(
        syn_ack_isn(c1, vip),
        syn_ack_isn(c1, Endpoint::new(Addr::new(100, 0, 0, 2), 80))
    );
}

/// ISN-relative arithmetic survives the wrap: the handshake's `isn + 1`,
/// the tunnel delta, and acknowledgement distances all behave when the
/// generated ISN lies at the top of sequence space.
#[test]
fn isn_arithmetic_across_the_boundary() {
    // Exhaustively scan client ports until the keyed hash emits ISNs in
    // the top and bottom 2²⁰ of the circle, then exercise both extremes.
    let vip = Endpoint::new(Addr::new(100, 0, 0, 1), 443);
    let mut high = None;
    let mut low = None;
    for port in 1024..u16::MAX {
        let client = Endpoint::new(Addr::new(172, 16, 3, 9), port);
        let isn = syn_ack_isn(client, vip);
        if isn.raw() > u32::MAX - (1 << 20) {
            high.get_or_insert(isn);
        }
        if isn.raw() < (1 << 20) {
            low.get_or_insert(isn);
        }
        if high.is_some() && low.is_some() {
            break;
        }
    }
    let (high, low) = (
        high.expect("an ISN near the top of sequence space"),
        low.expect("an ISN near the bottom of sequence space"),
    );
    // SYN-ACK consumes one sequence number even at the very top.
    assert_eq!((SeqNum::new(u32::MAX) + 1).raw(), 0);
    // A delta between a high and a low ISN translates both ways.
    let delta = low.offset_from(high);
    assert_eq!(high.translate(delta), low);
    assert_eq!(low.translate(0u32.wrapping_sub(delta)), high);
    // Advancing a top-of-space ISN by a response worth of bytes wraps
    // into low sequence numbers while staying after the ISN.
    let advanced = high + (1 << 21);
    assert!(high.lt(advanced));
}
