//! The simulation must be a pure function of its seed: two engines built
//! from the same config and driven through the same scenario must process
//! the *identical* event sequence. The engine folds every processed event
//! (time + kind + destination) into an FNV-1a digest; comparing digests
//! across runs catches any nondeterminism — hash-order iteration, ambient
//! randomness, wall-clock reads — no matter where it hides.
//!
//! This is the dynamic companion to `yoda-tidy`'s static determinism
//! rules: tidy forbids the known sources, this test catches the unknown
//! ones.

use yoda::core::testbed::{Testbed, TestbedConfig};
use yoda::http::{BrowserClient, BrowserConfig};
use yoda::netsim::SimTime;

/// Runs a full scenario — control-plane settling, browsers fetching
/// through muxes/instances/backends/TCPStore, an instance failure with
/// recovery — and returns the engine's event digest plus a few load-
/// bearing end-state numbers.
fn run_scenario(seed: u64) -> (u64, u64, u64, u64) {
    let mut tb = Testbed::build(TestbedConfig {
        seed,
        num_instances: 2,
        num_stores: 3,
        num_backends: 4,
        num_muxes: 2,
        num_services: 2,
        pages_per_site: 30,
        ..TestbedConfig::default()
    });
    tb.engine.run_for(SimTime::from_secs(1));
    let b0 = tb.add_browser(
        0,
        BrowserConfig {
            processes: 4,
            max_pages: Some(3),
            ..BrowserConfig::default()
        },
    );
    let b1 = tb.add_browser(
        1,
        BrowserConfig {
            processes: 3,
            max_pages: Some(2),
            ..BrowserConfig::default()
        },
    );
    // An instance failure mid-traffic exercises the recovery machinery,
    // which leans on timer ordering and TCPStore quorum scheduling.
    tb.fail_instance_at(0, SimTime::from_millis(2500));
    tb.engine.run_for(SimTime::from_secs(60));
    let completed = tb.engine.node_ref::<BrowserClient>(b0).completed
        + tb.engine.node_ref::<BrowserClient>(b1).completed;
    (
        tb.engine.event_digest(),
        tb.engine.packets_sent(),
        tb.engine.now().as_micros(),
        completed,
    )
}

/// Same seed ⇒ bit-identical event trace (and therefore end state).
#[test]
fn same_seed_same_event_trace() {
    let first = run_scenario(0xD15EA5E);
    let second = run_scenario(0xD15EA5E);
    assert_eq!(
        first, second,
        "two runs with one seed diverged: (digest, packets, time, completed)"
    );
    // The scenario must actually have exercised the system for the digest
    // comparison to mean anything.
    assert!(first.1 > 1_000, "scenario too small: {} packets", first.1);
    assert!(first.3 > 0, "no page fetches completed");
}

/// Different seeds ⇒ different traces (the digest actually discriminates).
#[test]
fn different_seed_different_event_trace() {
    let a = run_scenario(1);
    let b = run_scenario(2);
    assert_ne!(a.0, b.0, "digest failed to distinguish different seeds");
}

// ---------------------------------------------------------------------------
// Golden digest: pins the engine's event sequence across refactors
// ---------------------------------------------------------------------------

mod golden {
    use yoda::netsim::{
        Addr, Ctx, Endpoint, Engine, Node, Packet, SimTime, TimerId, TimerToken, Topology, Zone,
        PROTO_PING,
    };

    /// A node that exercises every event class the engine has: packets
    /// (forwarded around a ring with RNG-chosen hops), timers (periodic
    /// re-arm, same-tick collisions, and a cancelled one), and — driven
    /// from the harness below — control closures, node failure, and
    /// generation-bumping restore.
    struct Mixer {
        index: u32,
        ring: u32,
        hops_left: u32,
        fires: u32,
        cancelled: Option<TimerId>,
    }

    impl Mixer {
        fn peer(&self, offset: u32) -> Endpoint {
            let target = (self.index + offset) % self.ring;
            Endpoint::new(Addr::new(10, 9, 0, (target + 1) as u8), 0)
        }
        fn me(&self) -> Endpoint {
            Endpoint::new(Addr::new(10, 9, 0, (self.index + 1) as u8), 0)
        }
    }

    impl Node for Mixer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let pkt = Packet::new(self.me(), self.peer(1), PROTO_PING, bytes::Bytes::new());
            ctx.send(pkt);
            // Two timers landing on the same microsecond tick, plus one
            // cancelled before it can fire.
            ctx.set_timer(SimTime::from_millis(3), TimerToken::new(1));
            ctx.set_timer(SimTime::from_millis(3), TimerToken::new(2));
            let id = ctx.set_timer(SimTime::from_millis(4), TimerToken::new(3));
            self.cancelled = Some(id);
            if self.index % 2 == 0 {
                if let Some(id) = self.cancelled {
                    ctx.cancel_timer(id);
                }
            }
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _pkt: Packet) {
            if self.hops_left == 0 {
                return;
            }
            self.hops_left -= 1;
            let offset = 1 + (ctx.rng().gen_range(0..3) as u32);
            let pkt = Packet::new(self.me(), self.peer(offset), PROTO_PING, bytes::Bytes::new());
            ctx.send(pkt);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
            self.fires += 1;
            if token.kind == 1 && self.fires < 8 {
                ctx.set_timer(SimTime::from_millis(2), TimerToken::new(1));
                let pkt =
                    Packet::new(self.me(), self.peer(2), PROTO_PING, bytes::Bytes::new());
                ctx.send(pkt);
            }
        }
    }

    fn fresh(index: u32, ring: u32) -> Box<Mixer> {
        Box::new(Mixer {
            index,
            ring,
            hops_left: 40,
            fires: 0,
            cancelled: None,
        })
    }

    fn run_mixed_workload() -> (u64, u64, u64, u64) {
        const RING: u32 = 8;
        let mut eng = Engine::with_topology(99, Topology::uniform(SimTime::from_micros(700)));
        let mut ids = Vec::new();
        for i in 0..RING {
            let id = eng.add_node(
                format!("mixer-{i}"),
                Addr::new(10, 9, 0, (i + 1) as u8),
                Zone::Dc,
                fresh(i, RING),
            );
            ids.push(id);
        }
        // Control events interleaved with traffic: a crash mid-run, a
        // generation-bumping restore (stale timers must be suppressed),
        // and a scripted extra packet.
        let victim = ids[2];
        eng.schedule(SimTime::from_millis(9), move |eng| eng.fail_node(victim));
        eng.schedule(SimTime::from_millis(14), move |eng| {
            eng.restore_node(victim, fresh(2, RING));
        });
        eng.schedule(SimTime::from_millis(21), move |eng| {
            eng.with_node_ctx::<Mixer>(victim, |node, ctx| {
                let pkt =
                    Packet::new(node.me(), node.peer(1), PROTO_PING, bytes::Bytes::new());
                ctx.send(pkt);
            });
        });
        eng.run_for(SimTime::from_millis(200));
        (
            eng.event_digest(),
            eng.packets_sent(),
            eng.events_processed(),
            eng.now().as_micros(),
        )
    }

    /// Golden constants recorded from the engine *before* the hot-path
    /// overhaul (BTreeMap addr routing + single BinaryHeap). Any engine
    /// refactor must reproduce this event sequence bit-for-bit; if this
    /// test fails the change is a behaviour change, not a pure
    /// optimisation, and must not be folded into a perf PR.
    const GOLDEN_DIGEST: u64 = 0xa33c_a2ef_71ca_4849;
    const GOLDEN_PACKETS: u64 = 362;
    const GOLDEN_EVENTS: u64 = 448;

    #[test]
    fn mixed_workload_matches_golden_digest() {
        let (digest, packets, events, now) = run_mixed_workload();
        assert_eq!(now, 200_000, "run_for leaves the clock at the deadline");
        assert_eq!(
            (digest, packets, events),
            (GOLDEN_DIGEST, GOLDEN_PACKETS, GOLDEN_EVENTS),
            "event sequence diverged from the pre-overhaul engine \
             (digest, packets_sent, events_processed)"
        );
    }
}
