//! The simulation must be a pure function of its seed: two engines built
//! from the same config and driven through the same scenario must process
//! the *identical* event sequence. The engine folds every processed event
//! (time + kind + destination) into an FNV-1a digest; comparing digests
//! across runs catches any nondeterminism — hash-order iteration, ambient
//! randomness, wall-clock reads — no matter where it hides.
//!
//! This is the dynamic companion to `yoda-tidy`'s static determinism
//! rules: tidy forbids the known sources, this test catches the unknown
//! ones.

use yoda::core::testbed::{Testbed, TestbedConfig};
use yoda::http::{BrowserClient, BrowserConfig};
use yoda::netsim::SimTime;

/// Runs a full scenario — control-plane settling, browsers fetching
/// through muxes/instances/backends/TCPStore, an instance failure with
/// recovery — and returns the engine's event digest plus a few load-
/// bearing end-state numbers.
fn run_scenario(seed: u64) -> (u64, u64, u64, u64) {
    let mut tb = Testbed::build(TestbedConfig {
        seed,
        num_instances: 2,
        num_stores: 3,
        num_backends: 4,
        num_muxes: 2,
        num_services: 2,
        pages_per_site: 30,
        ..TestbedConfig::default()
    });
    tb.engine.run_for(SimTime::from_secs(1));
    let b0 = tb.add_browser(
        0,
        BrowserConfig {
            processes: 4,
            max_pages: Some(3),
            ..BrowserConfig::default()
        },
    );
    let b1 = tb.add_browser(
        1,
        BrowserConfig {
            processes: 3,
            max_pages: Some(2),
            ..BrowserConfig::default()
        },
    );
    // An instance failure mid-traffic exercises the recovery machinery,
    // which leans on timer ordering and TCPStore quorum scheduling.
    tb.fail_instance_at(0, SimTime::from_millis(2500));
    tb.engine.run_for(SimTime::from_secs(60));
    let completed = tb.engine.node_ref::<BrowserClient>(b0).completed
        + tb.engine.node_ref::<BrowserClient>(b1).completed;
    (
        tb.engine.event_digest(),
        tb.engine.packets_sent(),
        tb.engine.now().as_micros(),
        completed,
    )
}

/// Same seed ⇒ bit-identical event trace (and therefore end state).
#[test]
fn same_seed_same_event_trace() {
    let first = run_scenario(0xD15EA5E);
    let second = run_scenario(0xD15EA5E);
    assert_eq!(
        first, second,
        "two runs with one seed diverged: (digest, packets, time, completed)"
    );
    // The scenario must actually have exercised the system for the digest
    // comparison to mean anything.
    assert!(first.1 > 1_000, "scenario too small: {} packets", first.1);
    assert!(first.3 > 0, "no page fetches completed");
}

/// Different seeds ⇒ different traces (the digest actually discriminates).
#[test]
fn different_seed_different_event_trace() {
    let a = run_scenario(1);
    let b = run_scenario(2);
    assert_ne!(a.0, b.0, "digest failed to distinguish different seeds");
}
