//! Adversarial-delivery property tests for the TCP state machine: under
//! random segment reordering, duplication, and bounded loss (with timer-
//! driven retransmission), the receiver always reassembles exactly the
//! bytes that were sent.
//!
//! Runs on the in-tree deterministic PRNG with fixed seeds — every run
//! exercises the same case set, so failures always reproduce.

use yoda::netsim::rng::Rng;
use yoda::netsim::{Addr, Endpoint, SimTime};
use yoda::tcp::{Segment, SeqNum, SocketState, TcpConfig, TcpSocket};

/// Drives a client→server transfer where every in-flight segment batch is
/// shuffled, possibly duplicated, and possibly dropped; lost data is
/// recovered by firing the retransmission timers.
fn chaotic_transfer(data: &[u8], seed: u64, loss_pct: u64) -> Vec<u8> {
    let cfg = TcpConfig::default();
    let c_ep = Endpoint::new(Addr::new(172, 16, 0, 1), 40000);
    let s_ep = Endpoint::new(Addr::new(10, 1, 0, 1), 80);
    let mut rng = Rng::seed_from_u64(seed);
    let mut now = SimTime::ZERO;
    let (mut client, syn) = TcpSocket::connect(cfg, c_ep, s_ep, SeqNum::new(7), now);
    let (mut server, synack) =
        TcpSocket::accept(cfg, s_ep, c_ep, &syn, SeqNum::new(77), now).expect("syn");
    let mut to_server: Vec<Segment> = client.on_segment(&synack, now);
    to_server.extend(client.send(data, now));
    let mut received = Vec::new();
    // Alternate delivery rounds with chaos until both sides go idle and
    // all data arrived (or a safety cap).
    for round in 0..10_000 {
        // Impair the client->server batch.
        let mut batch = std::mem::take(&mut to_server);
        if batch.len() > 1 {
            for i in (1..batch.len()).rev() {
                let j = rng.gen_range(0..=i);
                batch.swap(i, j);
            }
        }
        let mut to_client = Vec::new();
        for seg in batch {
            if rng.gen_range(0..100u64) < loss_pct {
                continue; // lost
            }
            if rng.gen_range(0..100u64) < 10 {
                // Duplicate delivery.
                to_client.extend(server.on_segment(&seg, now));
            }
            to_client.extend(server.on_segment(&seg, now));
        }
        received.extend_from_slice(&server.take_data());
        for seg in to_client {
            if rng.gen_range(0..100u64) < loss_pct {
                continue;
            }
            to_server.extend(client.on_segment(&seg, now));
        }
        if to_server.is_empty() {
            if received.len() >= data.len() {
                break;
            }
            // Quiescent with missing data: fire the earliest timer.
            now = client
                .next_deadline()
                .unwrap_or(now + SimTime::from_secs(1))
                .max(now + SimTime::from_millis(1));
            to_server.extend(client.on_timer(now));
            if to_server.is_empty() && client.state() == SocketState::Reset {
                break;
            }
        }
        let _ = round;
    }
    received
}

/// Reordering + duplication alone never corrupts or loses data.
#[test]
fn reordered_duplicated_delivery_is_exact() {
    let mut meta = Rng::seed_from_u64(0xC4A0_5001);
    for case in 0..24 {
        let len = meta.gen_range(1usize..40_000);
        let seed = meta.next_u64();
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let got = chaotic_transfer(&data, seed, 0);
        assert_eq!(got, data, "case {case}: len={len} seed={seed:#x}");
    }
}

/// With 20% loss in both directions, retransmission recovers every byte,
/// in order, exactly once.
#[test]
fn lossy_delivery_recovers_exactly() {
    let mut meta = Rng::seed_from_u64(0xC4A0_5002);
    for case in 0..24 {
        let len = meta.gen_range(1usize..20_000);
        let seed = meta.next_u64();
        let data: Vec<u8> = (0..len).map(|i| (i.wrapping_mul(31) % 251) as u8).collect();
        let got = chaotic_transfer(&data, seed, 20);
        assert_eq!(got, data, "case {case}: len={len} seed={seed:#x}");
    }
}
