//! Sharded-executor equivalence: `Engine::run_until_sharded` must produce
//! **byte-identical** results to the single-threaded engine at every
//! worker count — same event digest, same counters, same clock, same
//! node end-state. This is the dynamic proof of the conservative-
//! lookahead design in `yoda_netsim::shard`: if any globally-ordered
//! effect (seq allocation, RNG draw, digest fold, counter bump) happens
//! in a different order under sharding, the digest diverges and these
//! tests fail.
//!
//! Five scenarios run at 1, 2, and 4 workers (8 in the sweep tests)
//! against a single-threaded reference:
//!
//! * **pingpong mesh** — latency-only links, packet storms, periodic
//!   timers with same-tick collisions, and timers cancelled both inside
//!   their arming window (mini-wheel path) and across windows (handle
//!   relocation path).
//! * **chaos mesh** — jittery, lossy, duplicating links (link RNG is
//!   drawn at replay, in canonical order) plus scheduled crash /
//!   generation-bumping restore / partition / heal controls interleaved
//!   with the parallel windows.
//! * **prequal testbed** — the full browser/TCP/Yoda stack with the
//!   probe-driven prequal policy: every handler layer draws per-node RNG
//!   (`Ctx::node_rng`) for think times, ISNs, and power-of-d picks.
//! * **chaos testbed** — a seeded `ChaosPlan` against that same stack,
//!   so fault scheduling, witness traffic, and re-shardings all overlap
//!   with handler randomness.
//! * **spliced testbed** — the prequal testbed with the mux fast path
//!   enabled, so splice installs, fast-path rewrites, and the
//!   opportunistic table sweep replay under sharding too.
//!
//! The `rng_streams` module additionally pins the per-node stream
//! semantics directly: draw sequences are identical at every worker
//! count, survive node migration across re-shardings, and the
//! engine-global `Ctx::rng` stays unavailable (panics) in shard mode.
//!
//! The `scenarios_identical_at_N_workers` tests give the CI matrix a
//! per-worker-count filter (`cargo test -- at_2_workers`), so the
//! barrier logic is exercised under real thread interleavings on
//! multi-core runners at each count separately.

use yoda::netsim::{
    Addr, Ctx, Endpoint, Engine, Node, Packet, SimTime, TimerId, TimerToken, Topology, Zone,
    PROTO_PING,
};

/// Everything that must match between a sharded and a single-threaded
/// run: the digest pins the full event sequence, the rest pins the
/// externally observable aggregates.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    digest: u64,
    packets_sent: u64,
    packets_dropped: u64,
    events_processed: u64,
    now_us: u64,
    timer_backlog: usize,
    node_state: Vec<(u64, u64)>,
}

/// Mesh node: floods pings around a ring, re-arms periodic timers
/// (including two on the same tick), and cancels timers through both
/// cancellation paths. Deliberately RNG-free so it isolates the
/// structural replay machinery; the `rng_streams` module and the
/// testbed scenarios cover handler randomness.
struct Mesher {
    index: u32,
    ring: u32,
    received: u64,
    fires: u64,
    hops_left: u32,
    /// Cancelled two fires after arming — by then the arming window is
    /// long gone, so the cancel exercises the relocation table.
    old_timer: Option<TimerId>,
}

impl Mesher {
    fn addr_of(i: u32, ring: u32) -> Endpoint {
        Endpoint::new(Addr::new(10, 7, 0, ((i % ring) + 1) as u8), 0)
    }
    fn me(&self) -> Endpoint {
        Mesher::addr_of(self.index, self.ring)
    }
}

impl Node for Mesher {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let pkt = Packet::new(
            self.me(),
            Mesher::addr_of(self.index + 1, self.ring),
            PROTO_PING,
            bytes::Bytes::new(),
        );
        ctx.send(pkt);
        // Same-tick collision: replay must order these by seq.
        ctx.set_timer(SimTime::from_millis(2), TimerToken::new(1));
        ctx.set_timer(SimTime::from_millis(2), TimerToken::new(2));
        // Armed and cancelled in the same handler: the mini-wheel (or the
        // direct single-threaded path) must still pop it, suppressed.
        let doomed = ctx.set_timer(SimTime::from_millis(1), TimerToken::new(9));
        ctx.cancel_timer(doomed);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _pkt: Packet) {
        self.received += 1;
        if self.hops_left == 0 {
            return;
        }
        self.hops_left -= 1;
        // Deterministic fan-out: offset varies with local state only.
        let offset = 1 + (self.received % 3) as u32;
        let pkt = Packet::new(
            self.me(),
            Mesher::addr_of(self.index + offset, self.ring),
            PROTO_PING,
            bytes::Bytes::new(),
        );
        ctx.send(pkt);
        if self.received % 4 == 0 {
            ctx.send_after(SimTime::from_micros(150), pkt_to(self, 2));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        self.fires += 1;
        if token.kind == 1 && self.fires < 24 {
            // Re-arm past the lookahead window so the timer crosses an
            // epoch barrier before firing.
            let id = ctx.set_timer(SimTime::from_millis(2), TimerToken::new(1));
            if let Some(old) = self.old_timer.replace(id) {
                // Stale handle from two windows ago: usually already
                // fired (no-op), occasionally still pending (relocation
                // table hit). Both paths must match single-threaded.
                ctx.cancel_timer(old);
            }
            ctx.send(pkt_to(self, 3));
        }
    }
}

fn pkt_to(node: &Mesher, offset: u32) -> Packet {
    Packet::new(
        node.me(),
        Mesher::addr_of(node.index + offset, node.ring),
        PROTO_PING,
        bytes::Bytes::new(),
    )
}

fn fresh(index: u32, ring: u32) -> Box<Mesher> {
    Box::new(Mesher {
        index,
        ring,
        received: 0,
        fires: 0,
        hops_left: 60,
        old_timer: None,
    })
}

/// Builds the mesh on the given topology and runs it for 300 ms with
/// `threads` workers (0 = plain single-threaded `run_until`).
fn run_mesh(topology: Topology, threads: usize, chaos: bool) -> Fingerprint {
    const RING: u32 = 8;
    let mut eng = Engine::with_topology(0xD1CE, topology);
    let mut ids = Vec::new();
    for i in 0..RING {
        let id = eng.add_node(
            format!("mesher-{i}"),
            Addr::new(10, 7, 0, (i + 1) as u8),
            Zone::Dc,
            fresh(i, RING),
        );
        ids.push(id);
    }
    if chaos {
        // Controls land mid-run: each one bounds a parallel window, runs
        // single-threaded, and the executor re-shards afterwards.
        let victim = ids[3];
        let cut = ids[5];
        eng.schedule(SimTime::from_millis(20), move |eng| eng.fail_node(victim));
        eng.schedule(SimTime::from_millis(60), move |eng| {
            eng.restore_node(victim, fresh(3, RING));
        });
        eng.schedule(SimTime::from_millis(35), move |eng| eng.partition_node(cut));
        eng.schedule(SimTime::from_millis(90), move |eng| eng.heal_node(cut));
        eng.schedule(SimTime::from_millis(110), move |eng| {
            eng.with_node_ctx::<Mesher>(victim, |node, ctx| {
                ctx.send(pkt_to(node, 1));
            });
        });
    }
    let deadline = SimTime::from_millis(300);
    if threads == 0 {
        eng.run_until(deadline);
    } else {
        eng.run_until_sharded(deadline, threads);
    }
    let node_state = ids
        .iter()
        .map(|&id| {
            let n = eng.node_ref::<Mesher>(id);
            (n.received, n.fires)
        })
        .collect();
    Fingerprint {
        digest: eng.event_digest(),
        packets_sent: eng.packets_sent(),
        packets_dropped: eng.packets_dropped(),
        events_processed: eng.events_processed(),
        now_us: eng.now().as_micros(),
        timer_backlog: eng.timer_backlog(),
        node_state,
    }
}

fn latency_only() -> Topology {
    Topology::uniform(SimTime::from_micros(500))
}

fn chaos_links() -> Topology {
    let mut topo = Topology::uniform(SimTime::from_micros(700));
    let mut spec = *topo.link(Zone::Dc, Zone::Dc);
    spec.jitter = SimTime::from_micros(300);
    spec.loss = 0.05;
    spec.duplicate = 0.03;
    topo.set_link(Zone::Dc, Zone::Dc, spec);
    topo
}

#[test]
fn pingpong_mesh_identical_at_1_2_4_workers() {
    let reference = run_mesh(latency_only(), 0, false);
    assert!(
        reference.packets_sent > 500,
        "scenario too small to be meaningful: {} packets",
        reference.packets_sent
    );
    for threads in [1, 2, 4] {
        let sharded = run_mesh(latency_only(), threads, false);
        assert_eq!(
            sharded, reference,
            "sharded run at {threads} workers diverged from single-threaded"
        );
    }
}

#[test]
fn chaos_scenario_identical_at_1_2_4_workers() {
    let reference = run_mesh(chaos_links(), 0, true);
    assert!(
        reference.packets_dropped > 0,
        "chaos scenario must exercise loss/failure drops"
    );
    for threads in [1, 2, 4] {
        let sharded = run_mesh(chaos_links(), threads, true);
        assert_eq!(
            sharded, reference,
            "sharded chaos run at {threads} workers diverged from single-threaded"
        );
    }
}

/// Every scenario at one worker count — the unit the CI matrix selects
/// by name so each count gets its own leg (and its own interleavings)
/// on a multi-core runner.
fn assert_identical_at(workers: usize) {
    assert_eq!(
        run_mesh(latency_only(), workers, false),
        run_mesh(latency_only(), 0, false),
        "pingpong mesh diverged at {workers} workers"
    );
    assert_eq!(
        run_mesh(chaos_links(), workers, true),
        run_mesh(chaos_links(), 0, true),
        "chaos scenario diverged at {workers} workers"
    );
    assert_eq!(
        testbed::prequal_fingerprint(workers),
        testbed::prequal_fingerprint(0),
        "prequal testbed diverged at {workers} workers"
    );
    assert_eq!(
        testbed::chaos_fingerprint(workers),
        testbed::chaos_fingerprint(0),
        "chaos testbed diverged at {workers} workers"
    );
    assert_eq!(
        testbed::spliced_fingerprint(workers),
        testbed::spliced_fingerprint(0),
        "spliced testbed diverged at {workers} workers"
    );
}

#[test]
fn scenarios_identical_at_2_workers() {
    assert_identical_at(2);
}

#[test]
fn scenarios_identical_at_4_workers() {
    assert_identical_at(4);
}

/// More shards than the sweep tests cover — and more shards than some
/// nodes have peers — so several workers spend whole windows idle.
#[test]
fn scenarios_identical_at_8_workers() {
    assert_identical_at(8);
}

/// Sharded runs compose with single-threaded segments: state migrates
/// fully back at the end of a sharded stretch, so an ST prologue +
/// sharded middle + ST epilogue equals one uninterrupted ST run.
#[test]
fn sharded_segment_composes_with_single_threaded_segments() {
    let reference = run_mesh(latency_only(), 0, false);
    let mut eng = Engine::with_topology(0xD1CE, latency_only());
    let mut ids = Vec::new();
    for i in 0..8 {
        ids.push(eng.add_node(
            format!("mesher-{i}"),
            Addr::new(10, 7, 0, (i + 1) as u8),
            Zone::Dc,
            fresh(i, 8),
        ));
    }
    eng.run_until(SimTime::from_millis(40));
    eng.run_until_sharded(SimTime::from_millis(220), 3);
    eng.run_until(SimTime::from_millis(300));
    assert_eq!(eng.event_digest(), reference.digest);
    assert_eq!(eng.now().as_micros(), reference.now_us);
    assert_eq!(eng.packets_sent(), reference.packets_sent);
}

/// A zero-latency link collapses the lookahead; the executor must fall
/// back to the (always correct) single-threaded path rather than run
/// empty windows or diverge.
#[test]
fn zero_lookahead_falls_back_to_single_threaded() {
    let zero = || Topology::uniform(SimTime::ZERO);
    let reference = run_mesh(zero(), 0, false);
    let sharded = run_mesh(zero(), 4, false);
    assert_eq!(sharded, reference);
}

/// Per-node RNG stream semantics, pinned directly: a node's draw
/// sequence is a pure function of (engine seed, NodeId, that node's own
/// handler order) — never of the worker count or shard interleaving.
mod rng_streams {
    use super::*;

    /// Draws per-node randomness from both timer and packet handlers and
    /// records every value, so node end-state comparison covers the full
    /// draw sequence, not just its length.
    struct Roller {
        peer: Endpoint,
        me: Endpoint,
        draws: Vec<u64>,
        fires: u64,
    }

    impl Node for Roller {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimTime::from_millis(3), TimerToken::new(1));
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _pkt: Packet) {
            self.draws.push(ctx.node_rng().gen_range(0..1_000_000));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
            self.fires += 1;
            // Variable draw count per event: stream offsets shift with
            // local history, so any cross-node mixup changes values.
            for _ in 0..1 + (self.fires % 3) {
                self.draws.push(ctx.node_rng().next_u64());
            }
            ctx.send(Packet::new(self.me, self.peer, PROTO_PING, bytes::Bytes::new()));
            if self.fires < 30 {
                ctx.set_timer(SimTime::from_millis(3), TimerToken::new(1));
            }
        }
    }

    fn build(n: u32) -> (Engine, Vec<yoda::netsim::NodeId>) {
        let mut eng = Engine::with_topology(0xF00D, Topology::uniform(SimTime::from_micros(800)));
        let ids = (0..n)
            .map(|i| {
                let me = Endpoint::new(Addr::new(10, 8, 0, (i + 1) as u8), 0);
                let peer = Endpoint::new(Addr::new(10, 8, 0, ((i + 1) % n + 1) as u8), 0);
                eng.add_node(
                    format!("roller-{i}"),
                    me.addr,
                    Zone::Dc,
                    Box::new(Roller { peer, me, draws: Vec::new(), fires: 0 }),
                )
            })
            .collect();
        (eng, ids)
    }

    fn draw_log(threads: usize, controls: bool) -> (u64, Vec<Vec<u64>>) {
        let (mut eng, ids) = build(6);
        if controls {
            // No-op controls force full migrate-in/out cycles, so node
            // RNG state must survive repeated re-shardings.
            for ms in [10u64, 25, 40, 55, 70] {
                eng.schedule(SimTime::from_millis(ms), |eng| {
                    let _ = eng.now();
                });
            }
        }
        let deadline = SimTime::from_millis(120);
        if threads == 0 {
            eng.run_until(deadline);
        } else {
            eng.run_until_sharded(deadline, threads);
        }
        let logs = ids
            .iter()
            .map(|&id| eng.node_ref::<Roller>(id).draws.clone())
            .collect();
        (eng.event_digest(), logs)
    }

    /// Per-node draw *values* (not just counts) match the
    /// single-threaded reference at every worker count.
    #[test]
    fn node_rng_draws_identical_at_1_2_4_8_workers() {
        let reference = draw_log(0, false);
        assert!(
            reference.1.iter().all(|d| d.len() > 40),
            "scenario too small: {:?}",
            reference.1.iter().map(Vec::len).collect::<Vec<_>>()
        );
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                draw_log(threads, false),
                reference,
                "per-node draw sequences diverged at {threads} workers"
            );
        }
    }

    /// Streams keep their position across migrate-out/migrate-in cycles:
    /// scheduled controls repeatedly pull every node (and its RNG) back
    /// into the engine and out again, and the draws must continue where
    /// they left off rather than restart or swap between nodes.
    #[test]
    fn migration_preserves_node_rng_streams() {
        let reference = draw_log(0, true);
        for threads in [2, 3, 4] {
            assert_eq!(
                draw_log(threads, true),
                reference,
                "draw sequence broke across re-shardings at {threads} workers"
            );
        }
    }

    /// A node that (incorrectly) reaches for the engine-global stream.
    struct GlobalRngUser;

    impl Node for GlobalRngUser {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimTime::from_millis(5), TimerToken::new(1));
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
            let _ = ctx.rng().gen_range(0..4u32);
        }
    }

    /// The engine-global stream's draw order cannot be replayed from
    /// inside a shard; reaching for it in a parallel window must fail
    /// loudly (the static effect pass rejects it first — this is the
    /// runtime backstop).
    #[test]
    #[should_panic(expected = "engine-global stream")]
    fn ctx_rng_panics_in_shard_mode() {
        let mut eng = Engine::with_topology(1, Topology::uniform(SimTime::from_millis(1)));
        for i in 0..4u32 {
            eng.add_node(
                format!("rng-user-{i}"),
                Addr::new(10, 9, 0, (i + 1) as u8),
                Zone::Dc,
                Box::new(GlobalRngUser),
            );
        }
        eng.run_until_sharded(SimTime::from_millis(50), 2);
    }

    /// Single-threaded, the global stream remains available to handlers
    /// (legacy single-threaded scenarios keep working unchanged).
    #[test]
    fn ctx_rng_still_works_single_threaded() {
        let mut eng = Engine::with_topology(1, Topology::uniform(SimTime::from_millis(1)));
        for i in 0..4u32 {
            eng.add_node(
                format!("rng-user-{i}"),
                Addr::new(10, 9, 0, (i + 1) as u8),
                Zone::Dc,
                Box::new(GlobalRngUser),
            );
        }
        eng.run_until(SimTime::from_millis(50));
    }
}

/// Full-stack scenarios: browsers, TCP, Yoda instances, TCPStore, and
/// the prequal probe subsystem all draw per-node RNG inside handlers —
/// exactly the workload the old `ShardError::HandlerRng` poison path
/// used to reject.
mod testbed {
    use yoda::chaos::{run_seed, ChaosScenario};
    use yoda::core::testbed::{Testbed, TestbedConfig};
    use yoda::http::{BrowserClient, BrowserConfig};
    use yoda::netsim::SimTime;

    /// Digest plus every externally observable aggregate of a testbed
    /// run; `PartialEq` so sweeps compare whole runs at once.
    #[derive(Debug, PartialEq, Eq)]
    pub struct TestbedPrint {
        digest: u64,
        events: u64,
        packets: u64,
        completed: u64,
        broken: u64,
        timeouts: u64,
        pages: u64,
        spliced: u64,
    }

    /// Small prequal-probing testbed: service 0 switches to the
    /// probe-driven policy, browsers fetch continuously, and every layer
    /// (browser think times, TCP ISNs, store core affinity, power-of-d
    /// probe picks) draws from per-node streams.
    pub fn prequal_fingerprint(threads: usize) -> TestbedPrint {
        testbed_fingerprint(threads, false)
    }

    /// The same stack with the mux fast path enabled: splice installs,
    /// fast-path seq/ack rewrites, FIN-driven teardown, and the idle
    /// sweep all have to replay identically under sharding.
    pub fn spliced_fingerprint(threads: usize) -> TestbedPrint {
        let print = testbed_fingerprint(threads, true);
        assert!(
            print.spliced > 0,
            "spliced testbed never took the fast path"
        );
        print
    }

    fn testbed_fingerprint(threads: usize, splice: bool) -> TestbedPrint {
        let mut tb = Testbed::build(TestbedConfig {
            seed: 0xBEEF,
            num_instances: 3,
            num_spares: 0,
            num_stores: 2,
            num_backends: 4,
            num_muxes: 2,
            num_services: 2,
            pages_per_site: 8,
            threads,
            yoda: yoda::core::instance::YodaConfig {
                splice,
                ..Default::default()
            },
            ..TestbedConfig::default()
        });
        let vip = tb.vips[0];
        let backends: Vec<String> = tb.service_backends[0]
            .iter()
            .map(|b| b.to_string())
            .collect();
        let rules = format!(
            "name=pq-0 priority=1 match * action=prequal {}",
            backends.join(" ")
        );
        tb.set_policy_at(vip, &rules, SimTime::from_millis(100));
        let browsers: Vec<_> = (0..2)
            .map(|s| tb.add_browser(s, BrowserConfig { processes: 2, ..BrowserConfig::default() }))
            .collect();
        tb.run_for(SimTime::from_secs(8));
        let mut print = TestbedPrint {
            digest: tb.engine.event_digest(),
            events: tb.engine.events_processed(),
            packets: tb.engine.packets_sent(),
            completed: 0,
            broken: 0,
            timeouts: 0,
            pages: 0,
            spliced: 0,
        };
        for &b in &browsers {
            if let Some(bc) = tb.engine.try_node_ref::<BrowserClient>(b) {
                print.completed += bc.completed;
                print.broken += bc.broken_flows;
                print.timeouts += bc.timeouts;
                print.pages += bc.pages_completed;
            }
        }
        for &m in &tb.muxes {
            if let Some(mx) = tb.engine.try_node_ref::<yoda::l4lb::Mux>(m) {
                print.spliced += mx.spliced;
            }
        }
        assert!(print.completed > 0, "testbed must serve fetches");
        print
    }

    /// A seeded chaos plan over the same stack: faults, WAN overrides,
    /// and witness traffic on top of handler randomness.
    pub fn chaos_fingerprint(threads: usize) -> TestbedPrint {
        let mut sc = ChaosScenario::survivable();
        sc.deadline = SimTime::from_secs(12);
        sc.threads = threads;
        let report = run_seed(11, &sc);
        TestbedPrint {
            digest: report.digest,
            events: report.events,
            packets: 0,
            completed: report.completed,
            broken: report.broken_flows,
            timeouts: report.timeouts,
            pages: report.pages_completed,
            spliced: report.spliced,
        }
    }

    #[test]
    fn prequal_testbed_identical_at_1_2_4_8_workers() {
        let reference = prequal_fingerprint(0);
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                prequal_fingerprint(threads),
                reference,
                "prequal testbed diverged at {threads} workers"
            );
        }
    }

    #[test]
    fn chaos_testbed_identical_at_1_2_4_8_workers() {
        let reference = chaos_fingerprint(0);
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                chaos_fingerprint(threads),
                reference,
                "chaos testbed diverged at {threads} workers"
            );
        }
    }

    #[test]
    fn spliced_testbed_identical_at_1_2_4_workers() {
        let reference = spliced_fingerprint(0);
        for threads in [1, 2, 4] {
            assert_eq!(
                spliced_fingerprint(threads),
                reference,
                "spliced testbed diverged at {threads} workers"
            );
        }
    }
}
