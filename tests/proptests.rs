//! Property-based tests on the core invariants.

use bytes::Bytes;
use proptest::prelude::*;
use yoda::assign::{solve_greedy, AssignInput, Assignment, GreedyConfig, VipSpec};
use yoda::core::flowstate::{FlowRecord, SynRecord};
use yoda::core::isn::syn_ack_isn;
use yoda::core::rules::glob_match;
use yoda::netsim::{Addr, Endpoint, Histogram, Packet, PROTO_TCP};
use yoda::tcp::{Flags, Segment, SeqNum};
use yoda::tcpstore::HashRing;
use yoda::trace::{Trace, TraceConfig};

fn arb_endpoint() -> impl Strategy<Value = Endpoint> {
    (any::<u32>(), any::<u16>()).prop_map(|(a, p)| Endpoint::new(Addr::from_u32(a), p))
}

proptest! {
    /// Sequence translation (Figure 4) is a bijection: applying the Y−S
    /// offset and then its inverse is the identity for any seq number,
    /// including across the 2³² wrap.
    #[test]
    fn seq_translation_bijective(y in any::<u32>(), s in any::<u32>(), x in any::<u32>()) {
        let yn = SeqNum::new(y);
        let sn = SeqNum::new(s);
        let delta = yn.offset_from(sn);
        let inv = sn.offset_from(yn);
        let xx = SeqNum::new(x);
        prop_assert_eq!(xx.translate(delta).translate(inv), xx);
        // The offsets are negatives of each other mod 2^32.
        prop_assert_eq!(delta.wrapping_add(inv), 0);
    }

    /// Modular comparison is a strict total order on any window < 2^31.
    #[test]
    fn seq_ordering_consistent(a in any::<u32>(), d in 1u32..(1 << 30)) {
        let x = SeqNum::new(a);
        let y = x + d;
        prop_assert!(x.lt(y));
        prop_assert!(!y.lt(x));
        prop_assert!(x.in_range(x, y));
        prop_assert!(!y.in_range(x, y));
        prop_assert_eq!(y - x, d);
    }

    /// Flow-state records round-trip through their wire encoding.
    #[test]
    fn flow_record_roundtrip(
        client in arb_endpoint(),
        vip in arb_endpoint(),
        backend in arb_endpoint(),
        c_isn in any::<u32>(),
        s_isn in any::<u32>(),
    ) {
        let rec = FlowRecord {
            client,
            vip,
            backend,
            client_isn: SeqNum::new(c_isn),
            server_isn: SeqNum::new(s_isn),
        };
        prop_assert_eq!(FlowRecord::decode(&rec.encode()), Some(rec));
        let syn = SynRecord { client, vip, client_isn: SeqNum::new(c_isn) };
        prop_assert_eq!(SynRecord::decode(&syn.encode()), Some(syn));
    }

    /// TCP segments round-trip, including through packet encapsulation.
    #[test]
    fn segment_roundtrip(
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flag_bits in 0u8..32,
        window in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
    ) {
        let seg = Segment {
            src_port,
            dst_port,
            seq: SeqNum::new(seq),
            ack: SeqNum::new(ack),
            flags: Flags {
                syn: flag_bits & 1 != 0,
                ack: flag_bits & 2 != 0,
                fin: flag_bits & 4 != 0,
                rst: flag_bits & 8 != 0,
                psh: flag_bits & 16 != 0,
            },
            window,
            payload: Bytes::from(payload),
        };
        let decoded = Segment::decode(seg.encode());
        prop_assert_eq!(decoded.as_ref(), Some(&seg));
        // Through IP-in-IP encapsulation as well.
        let src = Endpoint::new(Addr::new(1, 2, 3, 4), src_port);
        let dst = Endpoint::new(Addr::new(5, 6, 7, 8), dst_port);
        let pkt = Packet::new(src, dst, PROTO_TCP, seg.encode());
        let outer = pkt.encapsulate(Addr::new(9, 9, 9, 9), Addr::new(8, 8, 8, 8));
        let inner = outer.decapsulate().expect("decaps");
        prop_assert_eq!(Segment::from_packet(&inner), Some(seg));
    }

    /// The deterministic SYN-ACK ISN is a pure function of the connection
    /// endpoints (any instance regenerates it identically).
    #[test]
    fn isn_deterministic(client in arb_endpoint(), vip in arb_endpoint()) {
        prop_assert_eq!(syn_ack_isn(client, vip), syn_ack_isn(client, vip));
    }

    /// Glob matching agrees with a simple recursive reference
    /// implementation.
    #[test]
    fn glob_matches_reference(
        pattern in "[ab*?]{0,8}",
        text in "[ab]{0,8}",
    ) {
        fn reference(p: &[char], t: &[char]) -> bool {
            match (p.first(), t.first()) {
                (None, None) => true,
                (Some('*'), _) => {
                    reference(&p[1..], t) || (!t.is_empty() && reference(p, &t[1..]))
                }
                (Some('?'), Some(_)) => reference(&p[1..], &t[1..]),
                (Some(pc), Some(tc)) if pc == tc => reference(&p[1..], &t[1..]),
                _ => false,
            }
        }
        let pc: Vec<char> = pattern.chars().collect();
        let tc: Vec<char> = text.chars().collect();
        prop_assert_eq!(glob_match(&pattern, &text), reference(&pc, &tc));
    }

    /// Consistent hashing: replicas are distinct, deterministic, and
    /// removing one server never remaps a key whose replicas all survive.
    #[test]
    fn hashring_stability(keys in proptest::collection::vec(any::<u64>(), 1..50)) {
        let servers: Vec<Addr> = (1..=8).map(|i| Addr::new(10, 0, 1, i)).collect();
        let ring = HashRing::new(&servers, 64);
        let removed = servers[3];
        let survivors: Vec<Addr> =
            servers.iter().copied().filter(|&s| s != removed).collect();
        let ring2 = HashRing::new(&survivors, 64);
        for k in keys {
            let kb = k.to_be_bytes();
            let reps = ring.replicas(&kb, 2);
            prop_assert_eq!(reps.len(), 2);
            prop_assert_ne!(reps[0], reps[1]);
            prop_assert_eq!(&reps, &ring.replicas(&kb, 2));
            if !reps.contains(&removed) {
                // Primary placement survives the unrelated removal.
                prop_assert_eq!(ring2.primary(&kb), ring.primary(&kb));
            }
        }
    }

    /// The greedy assignment always satisfies every Figure 7 constraint
    /// it claims to (the validator is the oracle).
    #[test]
    fn greedy_output_always_valid(
        specs in proptest::collection::vec(
            (1.0f64..900.0, 10u64..400, 1usize..4, 0.0f64..0.6),
            1..40,
        ),
        delta in proptest::option::of(0.05f64..0.5),
    ) {
        let vips: Vec<VipSpec> = specs
            .iter()
            .map(|&(traffic, rules, replicas, oversub)| VipSpec {
                traffic,
                rules,
                replicas,
                oversub,
                connections: traffic,
            })
            .collect();
        let input = AssignInput {
            vips,
            max_instances: 150,
            traffic_capacity: 1_000.0,
            rule_capacity: 2_000,
            migration_limit: delta,
            previous: None,
        };
        if let Ok(out) = solve_greedy(&input, &GreedyConfig::default()) {
            prop_assert!(input.validate(&out.assignment).is_ok());
            prop_assert!(out.assignment.num_instances() >= input.lower_bound());
        }
    }

    /// Migration accounting: moving from an assignment to itself migrates
    /// nothing; to a disjoint one migrates everything.
    #[test]
    fn migration_fraction_bounds(
        n in 1usize..20,
    ) {
        let vips: Vec<VipSpec> = (0..n)
            .map(|i| VipSpec {
                traffic: 10.0 + i as f64,
                rules: 10,
                replicas: 1,
                oversub: 0.0,
                connections: 5.0 + i as f64,
            })
            .collect();
        let a = Assignment::new((0..n).map(|i| vec![i]).collect());
        let b = Assignment::new((0..n).map(|i| vec![i + n]).collect());
        prop_assert_eq!(a.migrated_fraction(&a, &vips), 0.0);
        prop_assert!((a.migrated_fraction(&b, &vips) - 1.0).abs() < 1e-9);
    }

    /// Histogram percentiles are order statistics: bounded by min/max and
    /// monotone in p.
    #[test]
    fn histogram_percentiles_monotone(samples in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let lo = h.min();
        let hi = h.max();
        let mut prev = lo;
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            prop_assert!(v >= lo && v <= hi);
            prop_assert!(v >= prev);
            prev = v;
        }
    }

    /// Trace CSV round-trips its structure for arbitrary sizes.
    #[test]
    fn trace_csv_roundtrip(vips in 1usize..20, bins in 1usize..30, seed in any::<u64>()) {
        let t = Trace::generate(&TraceConfig {
            num_vips: vips,
            bins,
            seed,
            ..TraceConfig::default()
        });
        let parsed = Trace::from_csv(&t.to_csv()).expect("parses");
        prop_assert_eq!(parsed.vips.len(), t.vips.len());
        for (a, b) in t.vips.iter().zip(&parsed.vips) {
            prop_assert_eq!(a.rules, b.rules);
            prop_assert_eq!(a.traffic.len(), b.traffic.len());
        }
    }
}

// Simplex feasibility: every solution the LP solver returns satisfies the
// constraints it was given (within tolerance), for random bounded
// programs.
proptest! {
    #[test]
    fn simplex_solutions_are_feasible(
        n in 1usize..5,
        rows in proptest::collection::vec(
            (proptest::collection::vec(-5.0f64..5.0, 4), 0u8..2, 0.5f64..20.0),
            1..6,
        ),
        c in proptest::collection::vec(-3.0f64..3.0, 4),
    ) {
        use yoda::assign::simplex::Cmp;
        use yoda::assign::LinearProgram;
        let mut lp = LinearProgram::new(n);
        lp.set_objective(&c[..n]);
        // Box the variables so the program is never unbounded.
        for v in 0..n {
            let mut row = vec![0.0; n];
            row[v] = 1.0;
            lp.add_constraint(&row, Cmp::Le, 50.0);
        }
        let mut cons = Vec::new();
        for (coeffs, cmp, rhs) in &rows {
            let cmp = if *cmp == 0 { Cmp::Le } else { Cmp::Ge };
            lp.add_constraint(&coeffs[..n], cmp, *rhs);
            cons.push((coeffs[..n].to_vec(), cmp, *rhs));
        }
        match lp.solve() {
            Ok(sol) => {
                for (coeffs, cmp, rhs) in cons {
                    let lhs: f64 = coeffs.iter().zip(&sol.x).map(|(a, x)| a * x).sum();
                    match cmp {
                        Cmp::Le => prop_assert!(lhs <= rhs + 1e-6, "{lhs} </= {rhs}"),
                        Cmp::Ge => prop_assert!(lhs >= rhs - 1e-6, "{lhs} >/= {rhs}"),
                        Cmp::Eq => prop_assert!((lhs - rhs).abs() < 1e-6),
                    }
                }
                for &x in &sol.x {
                    prop_assert!(x >= -1e-9, "negative variable {x}");
                }
            }
            Err(_) => {} // Infeasible/limit: nothing to check.
        }
    }
}
