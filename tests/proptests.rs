//! Randomized property tests on the core invariants.
//!
//! These were originally `proptest` strategies; they now run on the
//! in-tree deterministic PRNG so the workspace builds with no registry
//! dependencies and every failure replays from the fixed seed below.

use bytes::Bytes;
use yoda::assign::{solve_greedy, AssignInput, Assignment, GreedyConfig, VipSpec};
use yoda::core::flowstate::{FlowRecord, SynRecord};
use yoda::core::isn::syn_ack_isn;
use yoda::core::rules::glob_match;
use yoda::netsim::rng::Rng;
use yoda::netsim::{Addr, Endpoint, Histogram, Packet, PROTO_TCP};
use yoda::tcp::{Flags, Segment, SeqNum};
use yoda::tcpstore::HashRing;
use yoda::trace::{Trace, TraceConfig};

const CASES: usize = 256;

fn rng_for(test: &str) -> Rng {
    // Per-test stream: same cases every run, different cases per test.
    let mut seed = 0xFEED_F00Du64;
    for b in test.bytes() {
        seed = seed.wrapping_mul(31).wrapping_add(b as u64);
    }
    Rng::seed_from_u64(seed)
}

fn arb_endpoint(rng: &mut Rng) -> Endpoint {
    Endpoint::new(Addr::from_u32(rng.next_u32()), rng.gen_range(0..=u16::MAX))
}

/// Sequence translation (Figure 4) is a bijection: applying the Y−S
/// offset and then its inverse is the identity for any seq number,
/// including across the 2³² wrap.
#[test]
fn seq_translation_bijective() {
    let mut rng = rng_for("seq_translation_bijective");
    for _ in 0..CASES {
        let yn = SeqNum::new(rng.next_u32());
        let sn = SeqNum::new(rng.next_u32());
        let delta = yn.offset_from(sn);
        let inv = sn.offset_from(yn);
        let xx = SeqNum::new(rng.next_u32());
        assert_eq!(xx.translate(delta).translate(inv), xx);
        // The offsets are negatives of each other mod 2^32.
        assert_eq!(delta.wrapping_add(inv), 0);
    }
}

/// Modular comparison is a strict total order on any window < 2^31.
#[test]
fn seq_ordering_consistent() {
    let mut rng = rng_for("seq_ordering_consistent");
    for _ in 0..CASES {
        let x = SeqNum::new(rng.next_u32());
        let d = rng.gen_range(1u32..(1 << 30));
        let y = x + d;
        assert!(x.lt(y));
        assert!(!y.lt(x));
        assert!(x.in_range(x, y));
        assert!(!y.in_range(x, y));
        assert_eq!(y - x, d);
    }
}

/// Flow-state records round-trip through their wire encoding.
#[test]
fn flow_record_roundtrip() {
    let mut rng = rng_for("flow_record_roundtrip");
    for _ in 0..CASES {
        let client = arb_endpoint(&mut rng);
        let vip = arb_endpoint(&mut rng);
        let backend = arb_endpoint(&mut rng);
        let c_isn = rng.next_u32();
        let s_isn = rng.next_u32();
        let rec = FlowRecord {
            client,
            vip,
            backend,
            client_isn: SeqNum::new(c_isn),
            server_isn: SeqNum::new(s_isn),
        };
        assert_eq!(FlowRecord::decode(&rec.encode()), Some(rec));
        let syn = SynRecord {
            client,
            vip,
            client_isn: SeqNum::new(c_isn),
        };
        assert_eq!(SynRecord::decode(&syn.encode()), Some(syn));
    }
}

/// TCP segments round-trip, including through packet encapsulation.
#[test]
fn segment_roundtrip() {
    let mut rng = rng_for("segment_roundtrip");
    for _ in 0..CASES {
        let src_port = rng.gen_range(0..=u16::MAX);
        let dst_port = rng.gen_range(0..=u16::MAX);
        let flag_bits: u8 = rng.gen_range(0u8..32);
        let payload: Vec<u8> = (0..rng.gen_range(0..2000usize))
            .map(|_| rng.gen_range(0..=u8::MAX))
            .collect();
        let seg = Segment {
            src_port,
            dst_port,
            seq: SeqNum::new(rng.next_u32()),
            ack: SeqNum::new(rng.next_u32()),
            flags: Flags {
                syn: flag_bits & 1 != 0,
                ack: flag_bits & 2 != 0,
                fin: flag_bits & 4 != 0,
                rst: flag_bits & 8 != 0,
                psh: flag_bits & 16 != 0,
            },
            window: rng.next_u32(),
            payload: Bytes::from(payload),
        };
        let decoded = Segment::decode(seg.encode());
        assert_eq!(decoded.as_ref(), Some(&seg));
        // Through IP-in-IP encapsulation as well.
        let src = Endpoint::new(Addr::new(1, 2, 3, 4), src_port);
        let dst = Endpoint::new(Addr::new(5, 6, 7, 8), dst_port);
        let pkt = Packet::new(src, dst, PROTO_TCP, seg.encode());
        let outer = pkt.encapsulate(Addr::new(9, 9, 9, 9), Addr::new(8, 8, 8, 8));
        let inner = outer.decapsulate().expect("decaps");
        assert_eq!(Segment::from_packet(&inner), Some(seg));
    }
}

/// The deterministic SYN-ACK ISN is a pure function of the connection
/// endpoints (any instance regenerates it identically).
#[test]
fn isn_deterministic() {
    let mut rng = rng_for("isn_deterministic");
    for _ in 0..CASES {
        let client = arb_endpoint(&mut rng);
        let vip = arb_endpoint(&mut rng);
        assert_eq!(syn_ack_isn(client, vip), syn_ack_isn(client, vip));
    }
}

/// Glob matching agrees with a simple recursive reference implementation.
#[test]
fn glob_matches_reference() {
    fn reference(p: &[char], t: &[char]) -> bool {
        match (p.first(), t.first()) {
            (None, None) => true,
            (Some('*'), _) => reference(&p[1..], t) || (!t.is_empty() && reference(p, &t[1..])),
            (Some('?'), Some(_)) => reference(&p[1..], &t[1..]),
            (Some(pc), Some(tc)) if pc == tc => reference(&p[1..], &t[1..]),
            _ => false,
        }
    }
    let mut rng = rng_for("glob_matches_reference");
    const PAT_ALPHABET: [char; 4] = ['a', 'b', '*', '?'];
    const TXT_ALPHABET: [char; 2] = ['a', 'b'];
    for _ in 0..CASES * 4 {
        let pattern: String = (0..rng.gen_range(0..=8usize))
            .map(|_| PAT_ALPHABET[rng.gen_range(0..PAT_ALPHABET.len())])
            .collect();
        let text: String = (0..rng.gen_range(0..=8usize))
            .map(|_| TXT_ALPHABET[rng.gen_range(0..TXT_ALPHABET.len())])
            .collect();
        let pc: Vec<char> = pattern.chars().collect();
        let tc: Vec<char> = text.chars().collect();
        assert_eq!(
            glob_match(&pattern, &text),
            reference(&pc, &tc),
            "pattern={pattern:?} text={text:?}"
        );
    }
}

/// Consistent hashing: replicas are distinct, deterministic, and removing
/// one server never remaps a key whose replicas all survive.
#[test]
fn hashring_stability() {
    let mut rng = rng_for("hashring_stability");
    let servers: Vec<Addr> = (1..=8).map(|i| Addr::new(10, 0, 1, i)).collect();
    let ring = HashRing::new(&servers, 64);
    let removed = servers[3];
    let survivors: Vec<Addr> = servers.iter().copied().filter(|&s| s != removed).collect();
    let ring2 = HashRing::new(&survivors, 64);
    for _ in 0..CASES * 8 {
        let k: u64 = rng.next_u64();
        let kb = k.to_be_bytes();
        let reps = ring.replicas(&kb, 2);
        assert_eq!(reps.len(), 2);
        assert_ne!(reps[0], reps[1]);
        assert_eq!(&reps, &ring.replicas(&kb, 2));
        if !reps.contains(&removed) {
            // Primary placement survives the unrelated removal.
            assert_eq!(ring2.primary(&kb), ring.primary(&kb));
        }
    }
}

/// The greedy assignment always satisfies every Figure 7 constraint it
/// claims to (the validator is the oracle).
#[test]
fn greedy_output_always_valid() {
    let mut rng = rng_for("greedy_output_always_valid");
    for _ in 0..64 {
        let n = rng.gen_range(1..40usize);
        let vips: Vec<VipSpec> = (0..n)
            .map(|_| {
                let traffic = rng.gen_range(1.0f64..900.0);
                VipSpec {
                    traffic,
                    rules: rng.gen_range(10u64..400),
                    replicas: rng.gen_range(1usize..4),
                    oversub: rng.gen_range(0.0f64..0.6),
                    connections: traffic,
                }
            })
            .collect();
        let migration_limit = if rng.gen_bool(0.5) {
            Some(rng.gen_range(0.05f64..0.5))
        } else {
            None
        };
        let input = AssignInput {
            vips,
            max_instances: 150,
            traffic_capacity: 1_000.0,
            rule_capacity: 2_000,
            migration_limit,
            previous: None,
        };
        if let Ok(out) = solve_greedy(&input, &GreedyConfig::default()) {
            assert!(input.validate(&out.assignment).is_ok());
            assert!(out.assignment.num_instances() >= input.lower_bound());
        }
    }
}

/// Migration accounting: moving from an assignment to itself migrates
/// nothing; to a disjoint one migrates everything.
#[test]
fn migration_fraction_bounds() {
    for n in 1usize..20 {
        let vips: Vec<VipSpec> = (0..n)
            .map(|i| VipSpec {
                traffic: 10.0 + i as f64,
                rules: 10,
                replicas: 1,
                oversub: 0.0,
                connections: 5.0 + i as f64,
            })
            .collect();
        let a = Assignment::new((0..n).map(|i| vec![i]).collect());
        let b = Assignment::new((0..n).map(|i| vec![i + n]).collect());
        assert_eq!(a.migrated_fraction(&a, &vips), 0.0);
        assert!((a.migrated_fraction(&b, &vips) - 1.0).abs() < 1e-9);
    }
}

/// Histogram percentiles are order statistics: bounded by min/max and
/// monotone in p.
#[test]
fn histogram_percentiles_monotone() {
    let mut rng = rng_for("histogram_percentiles_monotone");
    for _ in 0..64 {
        let n = rng.gen_range(1..200usize);
        let mut h = Histogram::new();
        for _ in 0..n {
            h.record(rng.gen_range(0.0f64..1e6));
        }
        let lo = h.min().expect("n >= 1");
        let hi = h.max().expect("n >= 1");
        let mut prev = lo;
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p).expect("n >= 1");
            assert!(v >= lo && v <= hi);
            assert!(v >= prev);
            prev = v;
        }
    }
}

/// Trace CSV round-trips its structure for arbitrary sizes.
#[test]
fn trace_csv_roundtrip() {
    let mut rng = rng_for("trace_csv_roundtrip");
    for _ in 0..16 {
        let t = Trace::generate(&TraceConfig {
            num_vips: rng.gen_range(1..20usize),
            bins: rng.gen_range(1..30usize),
            seed: rng.next_u64(),
            ..TraceConfig::default()
        });
        let parsed = Trace::from_csv(&t.to_csv()).expect("parses");
        assert_eq!(parsed.vips.len(), t.vips.len());
        for (a, b) in t.vips.iter().zip(&parsed.vips) {
            assert_eq!(a.rules, b.rules);
            assert_eq!(a.traffic.len(), b.traffic.len());
        }
    }
}

/// Simplex feasibility: every solution the LP solver returns satisfies
/// the constraints it was given (within tolerance), for random bounded
/// programs.
#[test]
fn simplex_solutions_are_feasible() {
    use yoda::assign::simplex::Cmp;
    use yoda::assign::LinearProgram;
    let mut rng = rng_for("simplex_solutions_are_feasible");
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..5);
        let c: Vec<f64> = (0..4).map(|_| rng.gen_range(-3.0f64..3.0)).collect();
        let mut lp = LinearProgram::new(n);
        lp.set_objective(&c[..n]);
        // Box the variables so the program is never unbounded.
        for v in 0..n {
            let mut row = vec![0.0; n];
            row[v] = 1.0;
            lp.add_constraint(&row, Cmp::Le, 50.0);
        }
        let mut cons = Vec::new();
        for _ in 0..rng.gen_range(1usize..6) {
            let coeffs: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0f64..5.0)).collect();
            let cmp = if rng.gen_bool(0.5) { Cmp::Le } else { Cmp::Ge };
            let rhs = rng.gen_range(0.5f64..20.0);
            lp.add_constraint(&coeffs, cmp, rhs);
            cons.push((coeffs, cmp, rhs));
        }
        match lp.solve() {
            Ok(sol) => {
                for (coeffs, cmp, rhs) in cons {
                    let lhs: f64 = coeffs.iter().zip(&sol.x).map(|(a, x)| a * x).sum();
                    match cmp {
                        Cmp::Le => assert!(lhs <= rhs + 1e-6, "{lhs} </= {rhs}"),
                        Cmp::Ge => assert!(lhs >= rhs - 1e-6, "{lhs} >/= {rhs}"),
                        Cmp::Eq => assert!((lhs - rhs).abs() < 1e-6),
                    }
                }
                for &x in &sol.x {
                    assert!(x >= -1e-9, "negative variable {x}");
                }
            }
            Err(_) => {} // Infeasible/limit: nothing to check.
        }
    }
}
